"""Phi-accrual heartbeat failure detector over any GASPI runtime.

Until now, failure detection piggybacked on per-collective notification
timeouts: a rank was "missing" only once a degraded collective waited a
full ``detect_timeout`` for it.  This module detects failures *between*
collectives, continuously, on a dedicated heartbeat channel:

* every rank runs a background thread that posts a plain notification
  (``gaspi_notify``, notification id = sender rank, value = beat
  sequence) to every peer's health segment each ``period`` seconds and
  drains its own board;
* per peer, a :class:`PhiAccrualEstimator` (Hayashibara-style) turns the
  inter-arrival history into a continuous suspicion level
  ``phi = -log10 P(a heartbeat still arrives this late)`` — so a
  transient delay raises phi gradually and recedes when beats resume,
  while outright silence drives phi through the roof;
* two thresholds split the level into states: ``phi >= suspect_phi``
  marks the peer *suspected* (collectives should stop waiting for it),
  ``phi >= confirm_phi`` *confirms* the failure (recovery may act on
  it); a heartbeat arriving in either state *reinstates* the peer and
  counts a flap.

The detector rides the innermost transport layer, so heartbeats neither
advance a :class:`~repro.faults.injection.FaultyRuntime`'s data-plane op
counter nor appear in collective telemetry — but the fault plan is still
honoured in the *heartbeat* op domain: an injected crash silences the
beats at its step, per-rank delays and drops perturb them, and
``plan.recover()`` lets them resume.  The same plan therefore yields the
same suspect/confirm/reinstate sequence on the threaded and shm
backends, which is the backend-equivalence contract the tests pin down.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..gaspi.constants import DEFAULT_QUEUE_COUNT
from ..gaspi.errors import GaspiError
from ..gaspi.runtime import GaspiRuntime
from ..telemetry.core import CLOCK, NULL_TELEMETRY, Telemetry
from ..utils.logging import get_logger
from ..utils.validation import require

logger = get_logger("health.detector")

#: Dedicated segment id of the heartbeat channel — below the collectives'
#: id range (200+) and distinct from the degraded-exchange workspace
#: (:data:`~repro.faults.recovery.FAULT_SEGMENT_ID` = 140).
HEALTH_SEGMENT_ID = 150

#: Queue reserved for heartbeat traffic, clear of the collectives' queue 0.
HEALTH_QUEUE = DEFAULT_QUEUE_COUNT - 1

#: Consecutive failed heartbeat *sends* to one peer after which the peer
#: is treated as hard-dead (phi = inf) without waiting out the silence.
FAIL_FAST_SENDS = 3

#: Peer states, ordered by escalation.
ALIVE, SUSPECT, CONFIRMED = "alive", "suspect", "confirmed"


@dataclass(frozen=True)
class HealthEvent:
    """One detector state transition for one peer."""

    kind: str  #: ``"suspect"`` | ``"confirm"`` | ``"reinstate"``
    peer: int
    time: float  #: CLOCK() timestamp of the transition
    phi: float  #: suspicion level at the transition


class PhiAccrualEstimator:
    """Continuous suspicion level from one peer's inter-arrival history.

    ``phi(now)`` is ``-log10`` of the probability that a heartbeat still
    arrives given the elapsed silence, under a normal model of the
    windowed inter-arrival times: phi 1 means ~10% of intervals run this
    long, phi 6 means one in a million.  ``acceptable_pause`` widens the
    mean to absorb benign scheduling hiccups (GC, CI load) and
    ``min_std`` floors the spread so a metronomic sender does not make
    the model overconfident.
    """

    def __init__(
        self,
        expected_interval: float,
        *,
        window: int = 64,
        acceptable_pause: Optional[float] = None,
        min_std: Optional[float] = None,
    ) -> None:
        require(expected_interval > 0.0, "expected_interval must be > 0")
        self.expected_interval = float(expected_interval)
        self.acceptable_pause = (
            5.0 * self.expected_interval
            if acceptable_pause is None
            else float(acceptable_pause)
        )
        self.min_std = (
            self.expected_interval / 2.0 if min_std is None else float(min_std)
        )
        require(self.min_std > 0.0, "min_std must be > 0")
        self._intervals: Deque[float] = deque(maxlen=int(window))
        self._last: Optional[float] = None

    @property
    def last_heartbeat(self) -> Optional[float]:
        """CLOCK() time of the most recent observed beat (None before any)."""
        return self._last

    @property
    def samples(self) -> int:
        """Number of inter-arrival intervals in the window."""
        return len(self._intervals)

    def heartbeat(self, now: float) -> None:
        """Record one arrival."""
        if self._last is not None:
            self._intervals.append(max(0.0, now - self._last))
        self._last = now

    def reset(self, now: float) -> None:
        """Restart the model after a reinstatement.

        The silence interval must not poison the window (it would inflate
        the mean so far that the *next* failure goes undetected), so the
        history is dropped and the resumed beat becomes the new anchor.
        """
        self._intervals.clear()
        self._last = now

    def _model(self) -> Tuple[float, float]:
        if len(self._intervals) < 3:
            # Bootstrap: generously wide until the window has signal.
            return self.expected_interval, max(self.min_std, self.expected_interval)
        n = len(self._intervals)
        mean = sum(self._intervals) / n
        var = sum((x - mean) ** 2 for x in self._intervals) / n
        return mean, max(math.sqrt(var), self.min_std)

    def phi(self, now: float) -> float:
        """Suspicion level for the silence observed at ``now``."""
        if self._last is None:
            return 0.0
        elapsed = now - self._last
        mean, std = self._model()
        z = (elapsed - (mean + self.acceptable_pause)) / std
        # P(interval > elapsed) under the normal model, floored so phi
        # stays finite (the floor caps phi at 30).
        p_later = max(0.5 * math.erfc(z / math.sqrt(2.0)), 1e-30)
        return -math.log10(p_later)


class _PeerHealth:
    """Mutable per-peer detector state (detector-thread private)."""

    __slots__ = ("estimator", "state", "send_failures", "flaps")

    def __init__(self, estimator: PhiAccrualEstimator) -> None:
        self.estimator = estimator
        self.state = ALIVE
        self.send_failures = 0
        self.flaps = 0


def _layers(runtime: GaspiRuntime):
    """The wrapper stack outermost-first (telemetry, faults, ..., base)."""
    seen = set()
    layer = runtime
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        yield layer
        layer = getattr(layer, "inner", None) or getattr(layer, "base", None)


class HeartbeatDetector:
    """Background heartbeat protocol with per-peer phi-accrual estimation.

    One instance per rank; :meth:`start` creates the health segment,
    aligns the world on a barrier and launches the beat thread, and
    :meth:`stop` tears both down.  Listeners registered with
    :meth:`subscribe` receive every :class:`HealthEvent` *on the
    detector thread* — they must only flag state, never block.
    """

    def __init__(
        self,
        runtime: GaspiRuntime,
        *,
        period: float = 0.02,
        suspect_phi: float = 1.5,
        confirm_phi: float = 6.0,
        acceptable_pause: Optional[float] = None,
        min_std: Optional[float] = None,
        window: int = 64,
        segment_id: int = HEALTH_SEGMENT_ID,
        queue: int = HEALTH_QUEUE,
        start_timeout: float = 10.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        require(period > 0.0, "heartbeat period must be > 0")
        require(
            0.0 < suspect_phi < confirm_phi,
            "need 0 < suspect_phi < confirm_phi",
        )
        # Transport is the innermost layer: heartbeats must not advance
        # the fault layer's op counter nor pollute collective telemetry.
        stack = list(_layers(runtime))
        self._transport = stack[-1]
        self._faulty = next(
            (l for l in stack if hasattr(l, "plan") and hasattr(l, "is_crashed")),
            None,
        )
        self.rank = int(self._transport.rank)
        self.size = int(self._transport.size)
        self.period = float(period)
        self.suspect_phi = float(suspect_phi)
        self.confirm_phi = float(confirm_phi)
        self._segment_id = int(segment_id)
        self._queue = int(queue)
        self._start_timeout = float(start_timeout)
        self._telemetry = telemetry if telemetry is not None else (
            getattr(runtime, "telemetry", None) or NULL_TELEMETRY
        )
        self._peers: Dict[int, _PeerHealth] = {
            peer: _PeerHealth(
                PhiAccrualEstimator(
                    self.period,
                    window=window,
                    acceptable_pause=acceptable_pause,
                    min_std=min_std,
                )
            )
            for peer in range(self.size)
            if peer != self.rank
        }
        self._events: List[HealthEvent] = []
        self._listeners: List[Callable[[HealthEvent], None]] = []
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._beats_sent = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "HeartbeatDetector":
        """Create the heartbeat channel and launch the beat thread."""
        require(self._thread is None, "detector already started")
        try:
            self._transport.segment_create(self._segment_id, 8)
        except GaspiError:
            # A respawned rank may find its predecessor's health segment
            # still in /dev/shm under the deterministic name; adopt it
            # (stale notifications are drained by the adoption).
            adopt = getattr(self._transport, "adopt_segment", None)
            if adopt is None:
                raise
            adopt(self._segment_id)
        try:
            # Align the world so no beat lands on a not-yet-created
            # segment; tolerate a miss (a peer may already be dead — its
            # silence is exactly what we are here to detect).
            self._transport.barrier(timeout=self._start_timeout)
        except GaspiError:
            pass
        now = CLOCK()
        for ph in self._peers.values():
            # Anchor every estimator at startup so silence accrues phi
            # even for a peer that never manages a first beat.
            ph.estimator.heartbeat(now)
        self._stop.clear()
        self._started = True
        self._thread = threading.Thread(
            target=self._run, name=f"health-detector-r{self.rank}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the beat thread and release the heartbeat channel."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(5.0, 50 * self.period))
            self._thread = None
        if self._started:
            self._started = False
            try:
                self._transport.notify_drain(self._segment_id, 0, self.size)
                self._transport.segment_delete(self._segment_id)
            except GaspiError:
                pass

    def __enter__(self) -> "HeartbeatDetector":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> List[HealthEvent]:
        """Snapshot of every transition so far, in detection order."""
        with self._cond:
            return list(self._events)

    def events_for(self, peer: int) -> List[HealthEvent]:
        """This peer's transitions, in order."""
        return [e for e in self.events if e.peer == int(peer)]

    def state(self, peer: int) -> str:
        """Current state of a peer (``alive``/``suspect``/``confirmed``)."""
        return self._peers[int(peer)].state

    def phi(self, peer: int) -> float:
        """Current suspicion level of a peer."""
        return self._peers[int(peer)].estimator.phi(CLOCK())

    def suspected(self) -> List[int]:
        """Peers at or past the suspect threshold."""
        return sorted(p for p, ph in self._peers.items() if ph.state != ALIVE)

    def confirmed(self) -> List[int]:
        """Peers past the confirm threshold."""
        return sorted(p for p, ph in self._peers.items() if ph.state == CONFIRMED)

    def flaps(self, peer: int) -> int:
        """Times this peer was reinstated after a suspicion."""
        return self._peers[int(peer)].flaps

    def last_heartbeat(self, peer: int) -> Optional[float]:
        """CLOCK() time of the peer's most recent beat (start anchor counts)."""
        return self._peers[int(peer)].estimator.last_heartbeat

    def subscribe(self, listener: Callable[[HealthEvent], None]) -> None:
        """Deliver every future :class:`HealthEvent` to ``listener``.

        Called on the detector thread — implementations must be quick
        and non-blocking (set a flag, bump a counter).
        """
        with self._cond:
            self._listeners.append(listener)

    def wait_for(
        self, kind: str, peer: int, timeout: float = 10.0
    ) -> Optional[HealthEvent]:
        """Block until a matching event exists (or return None on timeout)."""
        peer = int(peer)
        deadline = CLOCK() + float(timeout)
        with self._cond:
            while True:
                for event in self._events:
                    if event.kind == kind and event.peer == peer:
                        return event
                remaining = deadline - CLOCK()
                if remaining <= 0.0:
                    return None
                self._cond.wait(remaining)

    # ------------------------------------------------------------------ #
    # the beat loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while not self._stop.is_set():
            self._send_beats()
            self._observe(CLOCK())
            self._stop.wait(self.period)

    def _beat_silenced(self) -> bool:
        """Whether the fault plan silences this rank's beats right now.

        A rank whose injected crash actually fired (``is_crashed``) is
        silent, and ``plan.recover()`` lets the beats resume — the flap
        story.  In a *detector-only* world (no data-plane traffic ever,
        so the crash can never fire) the beat index stands in for the op
        index, silencing the beats deterministically on both backends.
        In an integrated world the data plane is authoritative: beats
        keep flowing until the collective-domain crash really happens,
        so the detector never confirms a rank that is still contributing.
        """
        f = self._faulty
        if f is None:
            return False
        if f.is_crashed:
            return True
        crash = f.plan.crash_step(self.rank)
        return (
            crash is not None
            and f.ops_performed == 0
            and self._beats_sent >= crash
        )

    def _send_beats(self) -> None:
        if self._beat_silenced():
            return
        beat = self._beats_sent
        self._beats_sent += 1
        plan = self._faulty.plan if self._faulty is not None else None
        if plan is not None:
            pause = plan.send_delay(self.rank, beat)
            if pause > 0.0 and self._stop.wait(pause):
                return
        for peer, ph in self._peers.items():
            if plan is not None and plan.should_drop(self.rank, peer, beat):
                continue
            try:
                self._transport.notify(
                    peer, self._segment_id, self.rank, beat + 1, self._queue
                )
                ph.send_failures = 0
            except GaspiError:
                ph.send_failures += 1
        try:
            self._transport.wait(self._queue, timeout=self.period)
        except GaspiError:
            pass

    def _observe(self, now: float) -> None:
        arrived = self._transport.notify_drain(self._segment_id, 0, self.size)
        events: List[HealthEvent] = []
        for peer, ph in self._peers.items():
            if peer in arrived:
                ph.estimator.heartbeat(now)
                if ph.state != ALIVE:
                    ph.state = ALIVE
                    ph.flaps += 1
                    ph.estimator.reset(now)
                    events.append(HealthEvent("reinstate", peer, now, 0.0))
                continue
            phi = ph.estimator.phi(now)
            if ph.send_failures >= FAIL_FAST_SENDS:
                phi = float("inf")
            if ph.state == ALIVE and phi >= self.suspect_phi:
                ph.state = SUSPECT
                events.append(HealthEvent("suspect", peer, now, phi))
            if ph.state == SUSPECT and phi >= self.confirm_phi:
                ph.state = CONFIRMED
                events.append(HealthEvent("confirm", peer, now, phi))
                silence = now - (ph.estimator.last_heartbeat or now)
                if self._telemetry.enabled:
                    self._telemetry.histogram("health.confirm_s").observe(silence)
        if events:
            self._publish(events)

    def _publish(self, events: List[HealthEvent]) -> None:
        tel = self._telemetry
        with self._cond:
            self._events.extend(events)
            listeners = list(self._listeners)
            self._cond.notify_all()
        for event in events:
            logger.info(
                "rank %d: peer %d %s (phi=%.2f)",
                self.rank, event.peer, event.kind, event.phi,
            )
            if tel.enabled:
                tel.counter(f"health.{event.kind}s").add()
            for listener in listeners:
                try:
                    listener(event)
                except Exception:  # pragma: no cover - listener bug
                    logger.exception(
                        "rank %d: health listener failed on %s(%d)",
                        self.rank, event.kind, event.peer,
                    )
