"""Automatic recovery supervisor: from confirmed failure to healed world.

PR 8 left recovery operator-driven: somebody had to notice the degraded
results, call ``checkpoint()``, decide between ``shrink()`` and a
respawn, and retry when the agreement round hiccuped.  The supervisor
closes that loop.  It subscribes to a :class:`~repro.health.detector.
HeartbeatDetector` and drives the existing elastic machinery through an
escalation policy:

1. **degrade** — detector suspicion feeds straight into
   :meth:`Communicator.suspect`, so collectives skip the suspect without
   waiting out their per-call detection timeout (and
   :meth:`~Communicator.reinstate` on a flap);
2. **checkpoint** — at the next collective boundary whose result is
   missing confirmed-dead ranks, the supervisor snapshots the
   communicator (:meth:`Communicator.checkpoint`, saved to
   ``checkpoint_dir`` when configured);
3. **repair** — a configured ``respawn`` callback is offered the dead
   ranks first (shm worlds with an
   :class:`~repro.elastic.world.ElasticShmWorld` can spawn a
   replacement; threaded victims rejoin in place) and the supervisor
   converges the open degraded result while the replacement re-drives
   its contribution; otherwise — or when convergence times out — the
   survivors :meth:`~Communicator.shrink` to a full-strength smaller
   world;
4. **abort** — every repair attempt is guarded by bounded exponential
   backoff with jitter (:class:`repro.utils.backoff.Backoff`) and a
   recovery budget; when the budget is exhausted the supervisor aborts
   gracefully (telemetry, a structured log line, the ``on_abort``
   callback, and a :class:`SupervisorAborted` raised at the boundary).

Determinism note: the heal trigger is the *collective boundary* whose
result reports missing ranks, gated on the detector having *confirmed*
them dead (bounded wait; a rank that beats again during the wait is a
straggler/flap and is left alone).  Recovery never fires from the
detector thread.  Survivors whose detection window differed may reach
that boundary at different collective sequence numbers, so the shrink
agreement runs on a dedicated segment id (:data:`HEAL_SEGMENT_ID`)
outside the communicator's pooled lock-step range — late joiners fold
into the pending agreement instead of colliding with it — and waits out
``confirm_timeout`` for them.  A rank that dies *mid*-collective (after
contributing to some survivors) still converges here, but the cleanest
escalation comes from entry-of-collective deaths where every survivor
misses the contribution and triggers at the same boundary; see the
``supervised_crash`` scenario.

Every transition lands in telemetry (``health.*`` counters, a ``heal``
span, instant transition events) and in the ``repro.health.supervisor``
log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.api import Communicator
from ..gaspi.errors import GaspiError
from ..gaspi.group import Group
from ..telemetry.core import CLOCK
from ..utils.backoff import Backoff, BackoffPolicy
from ..utils.logging import get_logger
from .detector import ALIVE, HealthEvent, HeartbeatDetector

logger = get_logger("health.supervisor")

#: Fixed workspace segment id for the supervised shrink agreement round.
#: Outside the communicator's pooled lock-step slice, so survivors that
#: reach the heal boundary a collective or two apart cannot collide with
#: each other's ordinary traffic (one above the detector's segment 150).
HEAL_SEGMENT_ID = 151

#: Supervisor lifecycle states.
MONITORING, DEGRADED, HEALING, HEALED, ABORTED = (
    "monitoring", "degraded", "healing", "healed", "aborted"
)


class SupervisorAborted(RuntimeError):
    """The recovery budget is exhausted; the world could not be healed."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Escalation parameters of one :class:`RecoverySupervisor`.

    ``budget`` bounds the repair attempts per incident, each retried
    after a ``backoff`` pause; ``confirm_timeout`` bounds how long a
    boundary waits for the detector to confirm the collective-reported
    missing ranks (unconfirmed = a straggler or flap — stay degraded,
    do not remove a live rank); ``converge_timeout`` bounds the
    respawn-path correction loop before escalating to shrink.
    """

    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            initial=0.05, factor=2.0, max_pause=1.0, jitter=0.5
        )
    )
    budget: int = 3
    confirm_timeout: float = 5.0
    converge_timeout: float = 10.0
    checkpoint_dir: Optional[str] = None
    respawn: Optional[Callable[[Sequence[int]], bool]] = None
    on_abort: Optional[Callable[[str], None]] = None


class RecoverySupervisor:
    """Drives degrade → checkpoint → shrink/respawn → abort automatically.

    One per rank, wrapping one :class:`Communicator` and one
    :class:`HeartbeatDetector`.  After a heal the active communicator
    may be a *new* (shrunk) instance — always run collectives through
    :attr:`communicator`::

        sup = RecoverySupervisor(comm, detector)
        for step in range(steps):
            out = sup.communicator.allreduce(payload(step))
    """

    def __init__(
        self,
        comm: Communicator,
        detector: HeartbeatDetector,
        policy: Optional[SupervisorPolicy] = None,
    ) -> None:
        self._comm = comm
        self._detector = detector
        self._policy = policy or SupervisorPolicy()
        self._telemetry = comm.telemetry
        #: Active-comm rank -> detector (world) rank; identity until a shrink.
        self._to_world: List[int] = list(range(comm.size))
        self._state = MONITORING
        self._snapshot = None
        self._incidents = 0
        self._hook = comm.add_boundary_hook(self._on_boundary)
        detector.subscribe(self._on_health_event)

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #
    @property
    def communicator(self) -> Communicator:
        """The currently active communicator (a shrunk child after a heal)."""
        return self._comm

    @property
    def state(self) -> str:
        """Lifecycle state (monitoring/degraded/healing/healed/aborted)."""
        return self._state

    @property
    def snapshot(self):
        """The most recent boundary checkpoint (None before any incident)."""
        return self._snapshot

    @property
    def incidents(self) -> int:
        """Completed heal cycles."""
        return self._incidents

    @property
    def world_ranks(self) -> tuple:
        """Active-communicator rank -> original world rank, in order."""
        return tuple(self._to_world)

    def close(self) -> None:
        """Detach from the communicator (the detector is not stopped)."""
        self._comm.remove_boundary_hook(self._hook)

    # ------------------------------------------------------------------ #
    # stage 1: degrade (detector thread — flag state only)
    # ------------------------------------------------------------------ #
    def _active_rank(self, world_rank: int) -> Optional[int]:
        try:
            return self._to_world.index(world_rank)
        except ValueError:
            return None

    def _on_health_event(self, event: HealthEvent) -> None:
        local = self._active_rank(event.peer)
        if local is None or self._state == ABORTED:
            return
        if event.kind == "suspect":
            self._transition(DEGRADED, f"peer {event.peer} suspected")
            self._comm.suspect(local)
        elif event.kind == "reinstate":
            self._comm.reinstate(local)
            if self._state == DEGRADED and not self._detector.suspected():
                self._transition(MONITORING, f"peer {event.peer} reinstated")
        # "confirm" needs no action here: the next collective boundary
        # observes the rank missing and drives the heal synchronously.

    # ------------------------------------------------------------------ #
    # stages 2-4: boundary-triggered heal (dispatching thread)
    # ------------------------------------------------------------------ #
    def _on_boundary(self, comm: Communicator) -> None:
        if comm is not self._comm or self._state in (HEALING, ABORTED):
            return
        result = comm.last_result
        if result is None or not result.missing_ranks:
            return
        missing_world = sorted(
            self._to_world[r] for r in result.missing_ranks
        )
        dead_world = self._await_confirms(missing_world)
        # A rank the collective timed out but whose heartbeats say alive
        # was a straggler or a healed partition — clear the collective's
        # suspicion so the next round includes it again (the detector
        # re-suspects if it was wrong).
        back = [
            r for r in result.missing_ranks
            if self._to_world[r] not in dead_world
            and self._detector.state(self._to_world[r]) == ALIVE
        ]
        if back:
            comm.reinstate(*back)
        if not dead_world:
            # Stragglers or flaps only: suspicion already keeps the
            # collectives moving; removing a live rank would be worse
            # than degraded.
            logger.info(
                "rank %d: missing ranks %s not confirmed dead within %.1fs; "
                "staying degraded",
                comm.rank, missing_world, self._policy.confirm_timeout,
            )
            return
        failed = sorted(
            r for r in result.missing_ranks if self._to_world[r] in dead_world
        )
        if 2 * len(failed) >= comm.size:
            # Quorum guard: without a strict majority of survivors this
            # side of a partition must not vote the other side dead —
            # two minority worlds shrinking each other away is the
            # split-brain this refuses.  Stay degraded instead.
            logger.warning(
                "rank %d: refusing to heal after losing %d/%d ranks "
                "(no surviving majority); staying degraded",
                comm.rank, len(failed), comm.size,
            )
            return
        self.heal(failed)

    def _await_confirms(self, world_ranks: Sequence[int]) -> set:
        """Resolve each collective-missing rank as dead or merely late.

        Returns the subset of ``world_ranks`` the detector confirmed
        dead.  A rank that beats again *during this wait* is a flap or
        straggler and is resolved alive; the wait ends once every rank
        is resolved one way or the other, or when ``confirm_timeout``
        expires (unresolved counts as alive — never remove a live rank).
        """
        backoff = Backoff(
            BackoffPolicy(initial=0.005, factor=1.5, max_pause=0.1, jitter=0.5),
            timeout=self._policy.confirm_timeout,
            seed=self._detector.rank,
        )
        det = self._detector
        anchor = {r: det.last_heartbeat(r) for r in world_ranks}
        while True:
            confirmed = set(det.confirmed())
            dead = {r for r in world_ranks if r in confirmed}
            alive = {
                r for r in world_ranks
                if r not in confirmed
                and det.state(r) == ALIVE
                and det.last_heartbeat(r) != anchor[r]
            }
            if dead | alive == set(world_ranks):
                return dead
            if not backoff.sleep():
                return dead

    def heal(self, failed: Sequence[int]) -> Communicator:
        """Checkpoint, then repair (respawn or shrink), with backoff+budget.

        ``failed`` is in active-communicator numbering.  Returns the
        healed communicator (``self.communicator`` afterwards); raises
        :class:`SupervisorAborted` (or calls ``on_abort``) when the
        recovery budget is exhausted.
        """
        comm, tel = self._comm, self._telemetry
        failed = sorted(int(r) for r in failed)
        self._transition(HEALING, f"repairing after loss of {failed}")
        t0 = CLOCK() if tel.enabled else 0.0
        backoff = Backoff(
            self._policy.backoff,
            max_attempts=max(0, self._policy.budget - 1),
            seed=comm.rank,
        )
        last_error: Optional[BaseException] = None
        for attempt in range(self._policy.budget):
            try:
                healed = self._attempt_heal(comm, failed)
            except (GaspiError, OSError, TimeoutError) as exc:
                last_error = exc
                logger.warning(
                    "rank %d: heal attempt %d/%d failed: %s",
                    comm.rank, attempt + 1, self._policy.budget, exc,
                )
                if tel.enabled:
                    tel.counter("health.heal_retries").add()
                if not backoff.sleep():
                    break
                continue
            self._incidents += 1
            self._transition(HEALED, f"world healed after losing {failed}")
            self._state = MONITORING
            if tel.enabled:
                tel.counter("health.heals").add()
                tel.histogram("health.heal_s").observe(CLOCK() - t0)
                tel.record_span(
                    "heal", "health", t0, CLOCK(),
                    {"failed": failed, "attempts": attempt + 1,
                     "strategy": "respawn" if healed is comm else "shrink"},
                )
            return healed
        reason = (
            f"recovery budget ({self._policy.budget} attempt(s)) exhausted "
            f"after losing ranks {failed}"
            + (f": {last_error}" if last_error else "")
        )
        self._abort(reason)
        return comm  # unreachable unless on_abort swallows the abort

    def _attempt_heal(
        self, comm: Communicator, failed: Sequence[int]
    ) -> Communicator:
        pol = self._policy
        # Stage 2: checkpoint at this (consistent) collective boundary,
        # quiescing over the survivors only — the dead cannot barrier.
        survivors_group = Group(
            [r for r in range(comm.size) if r not in set(failed)]
        )
        self._snapshot = comm.checkpoint(
            group=survivors_group, timeout=pol.confirm_timeout
        )
        if pol.checkpoint_dir is not None:
            self._snapshot.save(self._policy.checkpoint_dir)
        self._transition(HEALING, f"checkpointed before repairing {list(failed)}")
        if self._telemetry.enabled:
            self._telemetry.counter("health.checkpoints").add()
        # Stage 3a: respawn, when the deployment offers one.
        world_ranks = sorted(self._to_world[r] for r in failed)
        if pol.respawn is not None and pol.respawn(world_ranks):
            if self._converge(comm):
                comm.reinstate(*failed)
                return comm
            logger.warning(
                "rank %d: respawn of %s did not converge within %.1fs; "
                "escalating to shrink",
                comm.rank, world_ranks, pol.converge_timeout,
            )
        # Stage 3b: shrink to a full-strength smaller world.  The
        # agreement runs on the dedicated heal segment with a generous
        # window so survivors that reach their heal boundary a step
        # later fold into this round instead of colliding with it.
        shrunk = comm.shrink(
            failed=failed,
            detect_timeout=pol.confirm_timeout,
            agreement_segment_id=HEAL_SEGMENT_ID,
            remove_missing_voters=False,
            vote_resends=3,
        )
        # Votes here are confirm-gated, so a survivor whose vote was lost
        # to a transient link fault must not be evicted (that would split
        # the world); a rank that truly died mid-heal survives into the
        # child and is healed again at the next boundary.  The agreement
        # may still have removed more than ``failed`` (another survivor's
        # confirmed set was larger) — the child's parent_ranks mapping is
        # authoritative.
        self._to_world = [self._to_world[r] for r in shrunk.parent_ranks]
        # Suspicion of *live* ranks (stragglers observed missing while
        # the heal was pending) carries into the child; clear it so the
        # full-strength world does not start degraded.
        detector = self._detector
        alive_children = [
            child for child, world in enumerate(self._to_world)
            if world != detector.rank and detector.state(world) == ALIVE
        ]
        if alive_children:
            shrunk.reinstate(*alive_children)
        comm.remove_boundary_hook(self._hook)
        self._hook = shrunk.add_boundary_hook(self._on_boundary)
        self._comm = shrunk
        return shrunk

    def _converge(self, comm: Communicator) -> bool:
        """Fold the replacement's late contribution in (respawn path)."""
        result = comm.last_result
        detail = result.detail if result is not None else None
        if detail is None:
            return True
        backoff = Backoff(
            self._policy.backoff,
            timeout=self._policy.converge_timeout,
            seed=comm.rank,
        )
        while not detail.complete:
            try:
                detail.correct(timeout=max(0.05, backoff.next_pause()))
            except GaspiError:
                pass
            if detail.complete:
                break
            if not backoff.sleep():
                return False
        return True

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def _transition(self, state: str, why: str) -> None:
        if state != self._state:
            logger.info(
                "rank %d: supervisor %s -> %s (%s)",
                self._comm.rank, self._state, state, why,
            )
        self._state = state
        if self._telemetry.enabled:
            self._telemetry.record_event(
                f"supervisor.{state}", "health", why=why
            )

    def _abort(self, reason: str) -> None:
        self._transition(ABORTED, reason)
        logger.error("rank %d: supervisor aborting: %s", self._comm.rank, reason)
        if self._telemetry.enabled:
            self._telemetry.counter("health.aborts").add()
        if self._policy.on_abort is not None:
            self._policy.on_abort(reason)
            return
        raise SupervisorAborted(reason)


def supervise(
    comm: Communicator,
    *,
    detector: Optional[HeartbeatDetector] = None,
    policy: Optional[SupervisorPolicy] = None,
    period: float = 0.02,
    **detector_kwargs,
) -> tuple:
    """Convenience: start a detector and attach a supervisor in one call.

    Returns ``(supervisor, detector)``; the caller owns both (stop the
    detector and close the supervisor when done).
    """
    if detector is None:
        detector = HeartbeatDetector(
            comm.runtime, period=period,
            telemetry=comm.telemetry if comm.telemetry.enabled else None,
            **detector_kwargs,
        )
        detector.start()
    supervisor = RecoverySupervisor(comm, detector, policy=policy)
    return supervisor, detector
