"""Self-healing worlds: failure detection and automatic recovery.

Three layers turn "a rank died mid-epoch" into "the world healed"
without operator code:

* :mod:`~repro.health.detector` — a background heartbeat protocol on a
  dedicated segment of any GASPI runtime, with per-peer phi-accrual
  suspicion levels and suspect/confirm thresholds;
* :mod:`~repro.health.supervisor` — a recovery supervisor that feeds
  detector suspicion into the collectives, checkpoints at the next
  collective boundary after a confirmed failure, and drives
  ``shrink()``/respawn with bounded backoff and a recovery budget;
* :mod:`~repro.health.soak` — a seeded chaos-soak harness
  (``python -m repro.health.soak``) that composes randomized fault
  plans, runs collective loops under them on both backends, checks
  convergence/replay/leak invariants each round, and minimizes failing
  seeds.
"""

from .detector import (
    ALIVE,
    CONFIRMED,
    FAIL_FAST_SENDS,
    HEALTH_QUEUE,
    HEALTH_SEGMENT_ID,
    SUSPECT,
    HealthEvent,
    HeartbeatDetector,
    PhiAccrualEstimator,
)
from .supervisor import (
    HEAL_SEGMENT_ID,
    RecoverySupervisor,
    SupervisorAborted,
    SupervisorPolicy,
    supervise,
)

__all__ = [
    "ALIVE",
    "SUSPECT",
    "CONFIRMED",
    "FAIL_FAST_SENDS",
    "HEAL_SEGMENT_ID",
    "HEALTH_QUEUE",
    "HEALTH_SEGMENT_ID",
    "HealthEvent",
    "HeartbeatDetector",
    "PhiAccrualEstimator",
    "RecoverySupervisor",
    "SupervisorAborted",
    "SupervisorPolicy",
    "supervise",
]
