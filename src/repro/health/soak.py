"""Seeded chaos soak for the self-healing stack (``python -m repro.health.soak``).

Each *seed* deterministically composes a fault cocktail — an
entry-of-collective crash, a persistent straggler delay, operation
jitter, and one link-level fault (a flapping rank, a healing partition,
or probabilistic message loss) — into one
:class:`~repro.faults.injection.FaultPlan`, then runs a supervised
collective loop (:func:`repro.health.supervisor.supervise`) under it on
the requested backend(s) and checks invariants:

* **liveness** — the world never wedges: every rank returns within the
  watchdog budget (a hung ProgressEngine or barrier shows up here);
* **fate** — exactly the plan-crashed ranks crash; every other rank
  finishes every round without an error, and nobody is falsely voted
  out of the world;
* **agreement** — all survivors report the *same* healed world
  (identical ``world_ranks``), with exactly one heal incident when the
  composition crashes a rank and zero otherwise;
* **convergence** — post-heal rounds are bit-identical across survivors
  *and* bit-identical to a native world of the surviving size replaying
  the same payload schedule (the eventual-consistency contract);
* **hygiene** — the shm backend leaks no ``/dev/shm`` blocks
  (ResourceWarnings from the leak sweep fail the round).

A failing seed is *minimized*: components are greedily removed while the
violation reproduces, and the smallest failing composition is reported —
``--seeds 8 --backend both`` is the CI chaos-soak job.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from typing import Dict, List, Optional

import numpy as np

from ..core.api import Communicator
from ..core.policy import ConsistencyPolicy
from ..faults.injection import FaultPlan, RankCrashedError
from ..gaspi.launch import BACKENDS, run_backend
from .supervisor import SupervisorPolicy, supervise

#: Seeding salt separating soak compositions from every other RNG stream.
_SOAK_SALT = 32452843

#: Process-threshold policy of the soak loops: complete at half.
DEGRADED = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")

#: Detection window of the soak collectives (generous for loaded CI).
SOAK_DETECT_TIMEOUT = 1.0

#: Heartbeat period of the soak detectors.
SOAK_PERIOD = 0.02

#: Collective round at whose entry the crash component kills its victim.
CRASH_ROUND = 1

#: Watchdog budget for one backend run — exceeding it means a wedged
#: world (the "no hung ProgressEngine" invariant).
SOAK_WATCHDOG = 120.0

#: How long a finished rank keeps its heartbeats going while stragglers
#: drain their last detection windows — an abrupt detector stop reads as
#: a death to a peer still mid-round (and ranks drift by at most one
#: detection window per degraded round).
SOAK_LINGER = 2.5


# --------------------------------------------------------------------------- #
# composition
# --------------------------------------------------------------------------- #
def compose(seed: int, ranks: int) -> Dict[str, dict]:
    """Deterministically pick this seed's fault components.

    Components are independent draws; the link-shaped faults (flap,
    partition, loss) are mutually exclusive because a plan carries one
    ``drop_links``/``drop_window`` pair, and probabilistic loss is only
    drawn for crash-free compositions (an agreement mask lost to random
    drops would split the survivors' removal votes — a known limitation
    of the tolerant agreement, not a soak regression).
    """
    rng = np.random.default_rng((int(seed), _SOAK_SALT))
    comp: Dict[str, dict] = {}
    crash = rng.random() < 0.75
    if crash:
        comp["crash"] = {"round": CRASH_ROUND}
    if rng.random() < 0.5:
        comp["delay"] = {
            "rank": int(rng.integers(0, max(1, ranks - 1))),
            "seconds": float(rng.uniform(0.002, 0.03)),
        }
    if rng.random() < 0.4:
        comp["jitter"] = {"amplitude": float(rng.uniform(0.0005, 0.005))}
    link = rng.random()
    if link < 0.25:
        comp["flap"] = {"rank": 0, "window": (3, 9)}
    elif link < 0.45:
        comp["partition"] = {"window": (0, max(2, ranks - 1))}
    elif link < 0.60 and not crash:
        comp["drop"] = {"probability": 0.01}
    return comp


def materialize(comp: Dict[str, dict], ranks: int, seed: int) -> FaultPlan:
    """Turn a composition into one :class:`FaultPlan` for ``ranks`` ranks.

    The crash fires at the *entry* of its round — the flat degraded
    exchange costs ``ranks - 1`` data-plane operations per collective,
    so no survivor holds the victim's contribution and every one of
    them observes the loss at the same collective boundary.
    """
    crash_at: Dict[int, int] = {}
    if "crash" in comp:
        crash_at[ranks - 1] = comp["crash"]["round"] * (ranks - 1)
    delay: Dict[int, float] = {}
    if "delay" in comp:
        delay[comp["delay"]["rank"]] = comp["delay"]["seconds"]
    drop_links = frozenset()
    drop_window = None
    if "flap" in comp:
        flapper = comp["flap"]["rank"]
        drop_links = frozenset(
            (flapper, peer) for peer in range(ranks) if peer != flapper
        )
        drop_window = tuple(comp["flap"]["window"])
    elif "partition" in comp:
        half = max(1, ranks // 2)
        lower, upper = range(half), range(half, ranks)
        drop_links = frozenset(
            {(a, b) for a in lower for b in upper}
            | {(b, a) for a in lower for b in upper}
        )
        drop_window = tuple(comp["partition"]["window"])
    return FaultPlan(
        crash_at=crash_at,
        delay=delay,
        jitter=comp.get("jitter", {}).get("amplitude", 0.0),
        drop_probability=comp.get("drop", {}).get("probability", 0.0),
        drop_links=drop_links,
        drop_window=drop_window,
        seed=int(seed),
    )


# --------------------------------------------------------------------------- #
# supervised loop (one rank)
# --------------------------------------------------------------------------- #
def _payload(rank: int, step: int, elements: int) -> np.ndarray:
    """Deterministic per-(rank, step) payload, keyed on the *active* rank
    so a healed world's sums match a native world of the same size.

    Integer-valued on purpose: the degraded exchange folds contributions
    in arrival order, so only exactly-representable values make the sums
    bit-identical across ranks, runs, and world generations.
    """
    return np.arange(elements, dtype=np.float64) + rank * 1000.0 + step * 17.0


def _soak_worker(runtime, plan, rounds, elements):
    comm = Communicator(
        runtime, faults=plan, detect_timeout=SOAK_DETECT_TIMEOUT
    )
    sup, det = supervise(
        comm,
        policy=SupervisorPolicy(confirm_timeout=10.0),
        period=SOAK_PERIOD,
    )
    out = {
        "rank": runtime.rank,
        "results": [],
        "sizes": [],
        "crashed": False,
        "error": None,
        "incidents": 0,
        "state": None,
        "world": None,
        "flaps": 0,
    }
    try:
        for step in range(rounds):
            active = sup.communicator
            try:
                res = active.allreduce(
                    _payload(active.rank, step, elements), policy=DEGRADED
                )
            except RankCrashedError:
                out["crashed"] = True
                break
            except Exception as exc:  # noqa: BLE001 - fate is an invariant
                out["error"] = f"{type(exc).__name__}: {exc}"
                break
            out["results"].append(res.tobytes())
            out["sizes"].append(sup.communicator.size)
        out["incidents"] = sup.incidents
        out["state"] = sup.state
        out["world"] = sup.world_ranks
        out["flaps"] = sum(det.flaps(p) for p in range(comm.size) if p != comm.rank)
        # Detach from healing first, then keep beating while stragglers
        # finish — stopping the detector here would read as a death to a
        # peer still waiting out its last detection window.
        sup.close()
        if not out["crashed"] and out["error"] is None:
            time.sleep(SOAK_LINGER)
        return out
    finally:
        det.stop()
        sup.close()
        child = sup.communicator
        child.close()
        if child is not comm:
            comm.close()


def _native_worker(runtime, first_step, last_step, elements):
    comm = Communicator(
        runtime, faults=FaultPlan.none(), detect_timeout=SOAK_DETECT_TIMEOUT
    )
    try:
        return [
            comm.allreduce(
                _payload(comm.rank, step, elements), policy=DEGRADED
            ).tobytes()
            for step in range(first_step, last_step)
        ]
    finally:
        comm.close()


def _shm_leaks(caught) -> List[str]:
    """ResourceWarnings from run_shm's leak sweep, as messages."""
    return [
        str(w.message)
        for w in caught
        if issubclass(w.category, ResourceWarning) and "leaked" in str(w.message)
    ]


# --------------------------------------------------------------------------- #
# invariants
# --------------------------------------------------------------------------- #
def check_invariants(
    comp: Dict[str, dict],
    plan: FaultPlan,
    results: List[dict],
    ranks: int,
    rounds: int,
    elements: int,
    backend: str,
    leaks: List[str],
) -> List[str]:
    """All violated invariants of one soak round (empty = clean)."""
    violations: List[str] = []
    if leaks:
        violations.append(f"/dev/shm leak(s): {leaks}")
    doomed = set(plan.crash_at)
    for rank in sorted(doomed):
        if not results[rank]["crashed"]:
            violations.append(
                f"rank {rank} was planned to crash but finished "
                f"{len(results[rank]['results'])} round(s)"
            )
    survivors = [r for r in range(ranks) if r not in doomed]
    for rank in survivors:
        res = results[rank]
        if res["error"] is not None:
            violations.append(f"rank {rank} errored: {res['error']}")
        elif res["crashed"]:
            violations.append(f"rank {rank} crashed without a planned crash")
        elif len(res["results"]) != rounds:
            violations.append(
                f"rank {rank} finished only {len(res['results'])}/{rounds} rounds"
            )
    if violations:
        return violations  # fate violations make the rest vacuous

    worlds = {results[r]["world"] for r in survivors}
    if len(worlds) != 1:
        violations.append(f"survivors disagree on the healed world: {worlds}")
        return violations
    world = worlds.pop()
    expected_world = tuple(survivors)
    if world != expected_world:
        violations.append(
            f"healed world is {world}, expected {expected_world} "
            f"(a live rank was voted out, or a dead one kept)"
        )
    expected_incidents = 1 if doomed else 0
    for rank in survivors:
        if results[rank]["incidents"] != expected_incidents:
            violations.append(
                f"rank {rank} healed {results[rank]['incidents']} time(s), "
                f"expected {expected_incidents}"
            )
    if violations:
        return violations

    if doomed:
        # Post-heal rounds: bit-identical across survivors and vs a
        # native world of the surviving size on the same schedule.
        first_post = CRASH_ROUND + 1
        blobs = {r: results[r]["results"][first_post:] for r in survivors}
        if len({tuple(b) for b in blobs.values()}) != 1:
            violations.append("post-heal rounds diverge across survivors")
        else:
            native = run_backend(
                len(survivors), _native_worker, first_post, rounds, elements,
                backend=backend, timeout=SOAK_WATCHDOG,
            )
            for idx, rank in enumerate(survivors):
                if blobs[rank] != native[idx]:
                    violations.append(
                        f"rank {rank}: post-heal rounds differ from the "
                        f"native {len(survivors)}-rank world"
                    )
                    break
    elif not any(k in comp for k in ("drop", "partition", "flap")):
        # Crash-free, loss-free compositions (delay/jitter only) must
        # produce bit-identical rounds on every rank.
        blobs = {tuple(results[r]["results"]) for r in survivors}
        if len(blobs) != 1:
            violations.append(
                "rounds diverge across ranks despite a loss-free composition"
            )
    return violations


# --------------------------------------------------------------------------- #
# driver + minimization
# --------------------------------------------------------------------------- #
def run_round(
    comp: Dict[str, dict],
    seed: int,
    backend: str,
    ranks: int,
    rounds: int,
    elements: int,
) -> List[str]:
    """Run one composition on one backend; returns its violations."""
    plan = materialize(comp, ranks, seed)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", ResourceWarning)
            results = run_backend(
                ranks, _soak_worker, plan, rounds, elements,
                backend=backend, timeout=SOAK_WATCHDOG,
            )
        leaks = _shm_leaks(caught)
    except Exception as exc:  # noqa: BLE001 - wedge/hang is an invariant
        return [f"world wedged or harness failed: {type(exc).__name__}: {exc}"]
    return check_invariants(
        comp, plan, results, ranks, rounds, elements, backend, leaks
    )


def minimize(
    comp: Dict[str, dict],
    seed: int,
    backend: str,
    ranks: int,
    rounds: int,
    elements: int,
) -> Dict[str, dict]:
    """Greedily drop components while the failure still reproduces."""
    current = dict(comp)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for name in list(current):
            candidate = {k: v for k, v in current.items() if k != name}
            if run_round(candidate, seed, backend, ranks, rounds, elements):
                current = candidate
                shrunk = True
                break
    return current


def run_soak(
    seeds: List[int],
    backends: List[str],
    ranks: int = 4,
    rounds: int = 4,
    elements: int = 256,
    do_minimize: bool = True,
) -> int:
    """Soak every (seed, backend) pair; returns the number of failures."""
    failures = 0
    for backend in backends:
        for seed in seeds:
            comp = compose(seed, ranks)
            label = "+".join(sorted(comp)) or "benign"
            t0 = time.perf_counter()
            violations = run_round(comp, seed, backend, ranks, rounds, elements)
            dt = time.perf_counter() - t0
            status = "ok" if not violations else "FAILED"
            print(
                f"[{status:>6}] seed={seed:<4} backend={backend:<8} "
                f"ranks={ranks} ({dt:.1f}s) - {label}"
            )
            for violation in violations:
                print(f"         ! {violation}")
            if violations:
                failures += 1
                if do_minimize and len(comp) > 1:
                    minimal = minimize(
                        comp, seed, backend, ranks, rounds, elements
                    )
                    print(
                        f"         > minimized to: "
                        f"{'+'.join(sorted(minimal))} ({minimal})"
                    )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.health.soak",
        description="seeded chaos soak of the self-healing stack",
    )
    parser.add_argument(
        "--seeds", type=int, default=8, help="number of seeds (0..N-1)"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed value"
    )
    parser.add_argument(
        "--backend", choices=list(BACKENDS) + ["both"], default="threaded",
        help="rank-world substrate(s) to soak",
    )
    parser.add_argument("--ranks", type=int, default=4, help="world size")
    parser.add_argument(
        "--rounds", type=int, default=4,
        help=f"collective rounds per seed (crash fires at round {CRASH_ROUND})",
    )
    parser.add_argument(
        "--elements", type=int, default=256, help="payload elements per rank"
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip failing-seed minimization",
    )
    args = parser.parse_args(argv)
    if args.rounds < CRASH_ROUND + 2:
        parser.error(f"--rounds must be >= {CRASH_ROUND + 2}")
    backends = list(BACKENDS) if args.backend == "both" else [args.backend]
    seeds = [args.seed_base + i for i in range(args.seeds)]
    failures = run_soak(
        seeds, backends, ranks=args.ranks, rounds=args.rounds,
        elements=args.elements, do_minimize=not args.no_minimize,
    )
    total = len(seeds) * len(backends)
    print(
        f"\n{total - failures}/{total} soak round(s) clean"
        + (f"; {failures} FAILED" if failures else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
