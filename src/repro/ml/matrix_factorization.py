"""Matrix Factorization model and its SGD gradients.

The model approximates the rating matrix ``R ≈ U Vᵀ`` with user factors
``U ∈ ℝ^{users×k}`` and item factors ``V ∈ ℝ^{items×k}``, minimising the
regularised squared error over the observed ratings — the same setup as
the paper's MF-SGD workload (reference [8], Oh et al.).

For the distributed experiments the model exposes its parameters as one
flat vector (:meth:`MatrixFactorizationModel.get_flat` /
:meth:`set_flat`) and computes *dense* gradients over a shard of ratings
(:meth:`gradient_flat`), so workers can exchange updates with a single
Allreduce per iteration — exactly the communication pattern
``allreduce_ssp`` is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import require
from .datasets import RatingsDataset


@dataclass
class MatrixFactorizationModel:
    """Low-rank factor model ``R ≈ U Vᵀ``."""

    user_factors: np.ndarray
    item_factors: np.ndarray
    regularization: float = 0.02

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initialize(
        cls,
        num_users: int,
        num_items: int,
        num_factors: int = 8,
        regularization: float = 0.02,
        seed: int = 0,
        scale: float = 0.2,
    ) -> "MatrixFactorizationModel":
        """Random small-magnitude initialisation (identical for a given seed).

        All workers must start from the same model, so the seed is shared.
        """
        require(num_users >= 1 and num_items >= 1, "model dimensions must be positive")
        require(num_factors >= 1, "num_factors must be >= 1")
        rng = np.random.default_rng(seed)
        return cls(
            user_factors=scale * rng.standard_normal((num_users, num_factors)),
            item_factors=scale * rng.standard_normal((num_items, num_factors)),
            regularization=regularization,
        )

    # ------------------------------------------------------------------ #
    # shapes / flattening
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self.user_factors.shape[0]

    @property
    def num_items(self) -> int:
        return self.item_factors.shape[0]

    @property
    def num_factors(self) -> int:
        return self.user_factors.shape[1]

    @property
    def num_parameters(self) -> int:
        """Length of the flattened parameter vector."""
        return self.user_factors.size + self.item_factors.size

    def get_flat(self) -> np.ndarray:
        """All parameters as one contiguous vector (users first)."""
        return np.concatenate([self.user_factors.ravel(), self.item_factors.ravel()])

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat`."""
        flat = np.asarray(flat, dtype=np.float64)
        require(flat.size == self.num_parameters, "flat vector has the wrong length")
        u_size = self.user_factors.size
        self.user_factors = flat[:u_size].reshape(self.user_factors.shape).copy()
        self.item_factors = flat[u_size:].reshape(self.item_factors.shape).copy()

    def copy(self) -> "MatrixFactorizationModel":
        return MatrixFactorizationModel(
            user_factors=self.user_factors.copy(),
            item_factors=self.item_factors.copy(),
            regularization=self.regularization,
        )

    # ------------------------------------------------------------------ #
    # prediction / loss
    # ------------------------------------------------------------------ #
    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predicted ratings for the given (user, item) pairs."""
        return np.einsum(
            "ij,ij->i", self.user_factors[users], self.item_factors[items]
        )

    def rmse(self, dataset: RatingsDataset) -> float:
        """Root-mean-square error over a dataset."""
        if dataset.num_ratings == 0:
            return 0.0
        err = self.predict(dataset.users, dataset.items) - dataset.ratings
        return float(np.sqrt(np.mean(err * err)))

    def loss(self, dataset: RatingsDataset) -> float:
        """Regularised squared-error objective."""
        err = self.predict(dataset.users, dataset.items) - dataset.ratings
        reg = self.regularization * (
            np.sum(self.user_factors**2) + np.sum(self.item_factors**2)
        )
        return float(np.sum(err * err) + reg)

    # ------------------------------------------------------------------ #
    # gradients
    # ------------------------------------------------------------------ #
    def gradient_flat(self, shard: RatingsDataset) -> np.ndarray:
        """Dense gradient of the (mean) squared error over ``shard``.

        The gradient has the same layout as :meth:`get_flat`.  Vectorised
        with ``np.add.at`` scatter-adds so it stays fast for large shards
        (no per-rating Python loop).
        """
        grad_u = np.zeros_like(self.user_factors)
        grad_v = np.zeros_like(self.item_factors)
        if shard.num_ratings == 0:
            return np.concatenate([grad_u.ravel(), grad_v.ravel()])

        users, items = shard.users, shard.items
        err = self.predict(users, items) - shard.ratings  # (n,)
        scale = 2.0 / shard.num_ratings
        contrib_u = scale * err[:, None] * self.item_factors[items]
        contrib_v = scale * err[:, None] * self.user_factors[users]
        np.add.at(grad_u, users, contrib_u)
        np.add.at(grad_v, items, contrib_v)
        grad_u += 2.0 * self.regularization / self.num_users * self.user_factors
        grad_v += 2.0 * self.regularization / self.num_items * self.item_factors
        return np.concatenate([grad_u.ravel(), grad_v.ravel()])

    def apply_update(self, flat_update: np.ndarray, learning_rate: float) -> None:
        """In-place SGD step ``θ ← θ - lr · update``."""
        flat_update = np.asarray(flat_update, dtype=np.float64)
        require(flat_update.size == self.num_parameters, "update has the wrong length")
        u_size = self.user_factors.size
        self.user_factors -= learning_rate * flat_update[:u_size].reshape(
            self.user_factors.shape
        )
        self.item_factors -= learning_rate * flat_update[u_size:].reshape(
            self.item_factors.shape
        )
