"""ML workload: Matrix Factorization trained with distributed SGD.

The paper evaluates ``allreduce_ssp`` by training a Matrix Factorization
model with Stochastic Gradient Descent on the MovieLens 25M dataset over
32 workers (Figures 6 and 7).  MovieLens is not redistributable inside
this repository, so :mod:`repro.ml.datasets` generates a synthetic
low-rank-plus-noise rating matrix with a MovieLens-like shape; the
convergence behaviour under staleness depends on the iterative-convergent
structure of the problem, which the synthetic data preserves.
"""

from .datasets import RatingsDataset, synthetic_ratings, movielens_like, train_test_split
from .matrix_factorization import MatrixFactorizationModel
from .metrics import rmse, time_to_target, iterations_to_target
from .sgd import (
    DistributedSGDConfig,
    IterationRecord,
    WorkerResult,
    run_distributed_sgd,
    run_slack_sweep,
)

__all__ = [
    "RatingsDataset",
    "synthetic_ratings",
    "movielens_like",
    "train_test_split",
    "MatrixFactorizationModel",
    "rmse",
    "time_to_target",
    "iterations_to_target",
    "DistributedSGDConfig",
    "IterationRecord",
    "WorkerResult",
    "run_distributed_sgd",
    "run_slack_sweep",
]
