"""Distributed SGD driver for Matrix Factorization (Figures 6 and 7).

The training loop mirrors the paper's experiment:

* the ratings are sharded over ``num_workers`` workers;
* every iteration each worker computes the dense MF gradient of its shard,
  then exchanges it with the other workers through an Allreduce;
* with ``algorithm="ssp"`` the exchange is the SSP hypercube allreduce
  (Algorithm 1) and the worker proceeds as soon as the contributions it
  reuses are at most ``slack`` iterations old;
* with ``algorithm="ring"`` the exchange is the fully consistent pipelined
  ring allreduce (the BSP baseline).

Worker heterogeneity — the reason SSP helps — is injected with a
:mod:`repro.ssp.perturbation` model, and every iteration records the wall
clock, the training error and the SSP wait time, which is exactly the data
plotted in Figures 6 and 7 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.allreduce_ring import ring_allreduce
from ..core.allreduce_ssp import SSPAllreduce
from ..core.api import Communicator
from ..gaspi.spmd import run_spmd
from ..gaspi.threaded import WorldConfig
from ..ssp.perturbation import ComputePerturbation, NoPerturbation, perturbation_from_spec
from ..ssp.staleness import StalenessTracker
from ..utils.validation import require
from .datasets import RatingsDataset
from .matrix_factorization import MatrixFactorizationModel
from .metrics import iterations_to_target, time_to_target


@dataclass
class DistributedSGDConfig:
    """Configuration of one distributed MF-SGD training run."""

    num_workers: int = 4
    num_factors: int = 8
    iterations: int = 50
    learning_rate: float = 10.0
    regularization: float = 0.02
    slack: int = 0
    algorithm: str = "ssp"  # "ssp", "ring" or "ring_overlap"
    #: artificial per-iteration compute floor (seconds); the perturbation
    #: model scales/offsets it to create stragglers
    base_compute_time: float = 0.002
    perturbation: str = "linear:1.6"
    seed: int = 0
    record_every: int = 1
    spmd_timeout: float = 300.0
    #: Gradient buckets of the ``"ring_overlap"`` exchange: the gradient
    #: vector is cut into this many slices, each allreduced through its
    #: own nonblocking pipeline (tagged plan) while the remaining slices
    #: are still being produced — the bucketed-overlap idiom of DL
    #: frameworks.
    overlap_buckets: int = 4

    def __post_init__(self) -> None:
        require(self.num_workers >= 1, "num_workers must be >= 1")
        require(self.iterations >= 1, "iterations must be >= 1")
        require(
            self.algorithm in ("ssp", "ring", "ring_overlap"),
            "algorithm must be 'ssp', 'ring' or 'ring_overlap'",
        )
        require(self.slack >= 0, "slack must be non-negative")
        require(self.record_every >= 1, "record_every must be >= 1")
        require(self.overlap_buckets >= 1, "overlap_buckets must be >= 1")


@dataclass
class IterationRecord:
    """Per-iteration measurement on one worker."""

    iteration: int
    elapsed: float
    train_rmse: float
    wait_time: float
    staleness: int
    result_clock: int


@dataclass
class WorkerResult:
    """Everything one worker measured during training."""

    rank: int
    records: List[IterationRecord]
    final_rmse: float
    total_time: float
    total_wait_time: float
    staleness: StalenessTracker

    @property
    def iterations_per_second(self) -> float:
        if self.total_time <= 0:
            return 0.0
        return len(self.records) / self.total_time


@dataclass
class SlackSweepEntry:
    """Aggregated outcome of one slack setting (one line of Figure 6)."""

    slack: int
    mean_iterations_per_second: float
    mean_wait_time_per_iteration: float
    final_rmse: float
    time_to_target: Optional[float]
    iterations_to_target: Optional[int]
    total_time: float
    worker_results: List[WorkerResult] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# the per-worker training loop
# --------------------------------------------------------------------------- #
def _worker_train(
    runtime,
    dataset: RatingsDataset,
    config: DistributedSGDConfig,
    perturbation: ComputePerturbation,
) -> WorkerResult:
    rank = runtime.rank
    size = runtime.size
    shard = dataset.shard(size, rank)
    model = MatrixFactorizationModel.initialize(
        dataset.num_users,
        dataset.num_items,
        num_factors=config.num_factors,
        regularization=config.regularization,
        seed=config.seed,
    )
    num_params = model.num_parameters

    collective: Optional[SSPAllreduce] = None
    if config.algorithm == "ssp" and size > 1:
        collective = SSPAllreduce(
            runtime, num_params, slack=config.slack, op="sum", dtype=np.float64
        )
    overlap: Optional[OverlapAllreduce] = None
    if config.algorithm == "ring_overlap" and size > 1:
        overlap = OverlapAllreduce(
            Communicator(runtime), num_params, buckets=config.overlap_buckets
        )

    tracker = StalenessTracker(slack=config.slack)
    records: List[IterationRecord] = []
    start = time.perf_counter()
    total_wait = 0.0

    for iteration in range(1, config.iterations + 1):
        gradient = model.gradient_flat(shard)
        # heterogeneity: some workers take longer to produce their gradient
        perturbation.sleep(rank, iteration, config.base_compute_time)

        if size == 1:
            averaged = gradient
            wait_time, staleness, result_clock = 0.0, 0, iteration
        elif config.algorithm == "ssp":
            result = collective.reduce(gradient)
            averaged = result.value / size
            wait_time = result.stats.wait_time
            staleness = result.stats.staleness
            result_clock = result.clock
        elif config.algorithm == "ring_overlap":
            # Bucketed nonblocking exchange: bucket pipelines advance in
            # the background while later buckets are issued.
            averaged = overlap.exchange(gradient) / size
            wait_time, staleness, result_clock = 0.0, 0, iteration
        else:  # fully consistent ring allreduce (BSP baseline)
            out = np.empty_like(gradient)
            ring_allreduce(runtime, gradient, out, op="sum")
            averaged = out / size
            wait_time, staleness, result_clock = 0.0, 0, iteration

        total_wait += wait_time
        tracker.record_iteration(staleness, wait_time, waited=wait_time > 0.0)
        model.apply_update(averaged, config.learning_rate)

        if iteration % config.record_every == 0 or iteration == config.iterations:
            records.append(
                IterationRecord(
                    iteration=iteration,
                    elapsed=time.perf_counter() - start,
                    train_rmse=model.rmse(dataset),
                    wait_time=wait_time,
                    staleness=staleness,
                    result_clock=result_clock,
                )
            )

    total_time = time.perf_counter() - start
    if collective is not None:
        runtime.barrier()
        collective.close()
    elif overlap is not None:
        runtime.barrier()
        overlap.close()
    elif config.algorithm == "ring" and size > 1:
        runtime.barrier()

    return WorkerResult(
        rank=rank,
        records=records,
        final_rmse=model.rmse(dataset),
        total_time=total_time,
        total_wait_time=total_wait,
        staleness=tracker,
    )


def run_distributed_sgd(
    dataset: RatingsDataset,
    config: DistributedSGDConfig,
    world_config: Optional[WorldConfig] = None,
) -> List[WorkerResult]:
    """Train MF-SGD on ``num_workers`` rank threads; returns per-worker results."""
    perturbation = perturbation_from_spec(
        config.perturbation, config.num_workers, seed=config.seed
    )
    return run_spmd(
        config.num_workers,
        _worker_train,
        dataset,
        config,
        perturbation,
        world_config=world_config,
        timeout=config.spmd_timeout,
    )


# --------------------------------------------------------------------------- #
# the slack sweep of Figure 6
# --------------------------------------------------------------------------- #
def run_slack_sweep(
    dataset: RatingsDataset,
    slacks: Sequence[int],
    base_config: Optional[DistributedSGDConfig] = None,
    target_rmse: Optional[float] = None,
) -> Dict[int, SlackSweepEntry]:
    """Run the same training job for several slack values (Figure 6).

    The target error defaults to the final error of the ``slack = 0`` run
    (which is therefore executed first), matching the paper's methodology:
    "iterate for a total of 500 iterations for the slack = 0 execution, and
    then for the other executions use a number of iterations necessary to
    achieve the same error".
    """
    base_config = base_config or DistributedSGDConfig()
    slacks = list(slacks)
    require(bool(slacks), "need at least one slack value")
    ordered = sorted(set(slacks), key=lambda s: (s != 0, s))  # slack 0 first if present

    results: Dict[int, SlackSweepEntry] = {}
    for slack in ordered:
        config = DistributedSGDConfig(**{**base_config.__dict__, "slack": slack})
        worker_results = run_distributed_sgd(dataset, config)
        entry = _aggregate(slack, worker_results, target_rmse)
        results[slack] = entry
        if target_rmse is None and slack == 0:
            target_rmse = entry.final_rmse * 1.02  # small tolerance band
            # recompute convergence targets of the slack-0 entry itself
            results[slack] = _aggregate(slack, worker_results, target_rmse)
    # If slack 0 was not requested, fall back to the first entry's error.
    if target_rmse is None:
        first = results[ordered[0]]
        target_rmse = first.final_rmse * 1.02
        results = {s: _aggregate(s, e.worker_results, target_rmse) for s, e in results.items()}
    return {s: results[s] for s in slacks}


def _aggregate(
    slack: int, worker_results: List[WorkerResult], target_rmse: Optional[float]
) -> SlackSweepEntry:
    reference = worker_results[0]
    times = [r.elapsed for r in reference.records]
    errors = [r.train_rmse for r in reference.records]
    mean_ips = float(np.mean([w.iterations_per_second for w in worker_results]))
    mean_wait = float(
        np.mean(
            [
                w.total_wait_time / max(1, len(w.records))
                for w in worker_results
            ]
        )
    )
    return SlackSweepEntry(
        slack=slack,
        mean_iterations_per_second=mean_ips,
        mean_wait_time_per_iteration=mean_wait,
        final_rmse=reference.final_rmse,
        time_to_target=(
            time_to_target(times, errors, target_rmse) if target_rmse is not None else None
        ),
        iterations_to_target=(
            iterations_to_target(errors, target_rmse) if target_rmse is not None else None
        ),
        total_time=max(w.total_time for w in worker_results),
        worker_results=worker_results,
    )


# --------------------------------------------------------------------------- #
# overlapping gradient allreduce (nonblocking bucket pipelines)
# --------------------------------------------------------------------------- #
class OverlapAllreduce:
    """Bucketed overlapping gradient exchange over nonblocking pipelines.

    The DL-framework idiom on top of
    :meth:`repro.core.api.Communicator.iallreduce`: the gradient vector is
    cut into ``buckets`` slices, each exchanged through its own tagged
    compiled plan.  :meth:`exchange` issues all buckets and drains them;
    :meth:`issue` / :meth:`finish` split the two halves so a training loop
    can push each bucket the moment its layer's gradient is ready and keep
    computing while earlier buckets reduce — with the communicator's
    progress thread running, the pipelines advance during any phase that
    releases the CPU (accelerator offload, I/O, stragglers' wait time).
    """

    def __init__(
        self,
        comm: Communicator,
        num_params: int,
        buckets: int = 4,
        progress_thread: bool = True,
    ) -> None:
        require(buckets >= 1, "buckets must be >= 1")
        self.comm = comm
        self.num_params = int(num_params)
        self.buckets = min(int(buckets), max(1, self.num_params))
        bounds = np.linspace(0, self.num_params, self.buckets + 1).astype(int)
        self.bounds = [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(self.buckets)
        ]
        self._out = np.empty(self.num_params, dtype=np.float64)
        self._pending: List = []
        if progress_thread:
            comm.start_progress_thread()

    def issue(self, gradient: np.ndarray, bucket: int) -> None:
        """Start the nonblocking exchange of one gradient bucket."""
        begin, end = self.bounds[bucket]
        self._pending.append(
            self.comm.iallreduce(
                np.ascontiguousarray(gradient[begin:end]),
                recvbuf=self._out[begin:end],
                tag=bucket,
            )
        )

    def finish(self) -> np.ndarray:
        """Drain all issued buckets; returns the reduced full vector.

        Waits the tracked handles only — an unrelated nonblocking
        collective the application has in flight on the same communicator
        is left alone.
        """
        for handle in self._pending:
            handle.wait()
        self._pending.clear()
        return self._out

    def exchange(self, gradient: np.ndarray) -> np.ndarray:
        """Issue every bucket and drain (the drop-in allreduce form)."""
        for bucket in range(self.buckets):
            self.issue(gradient, bucket)
        return self.finish()

    def close(self) -> None:
        """Release the communicator's plans and progress thread."""
        self.comm.close()


@dataclass
class OverlapDemoResult:
    """Measured outcome of the overlap demonstration."""

    blocking_seconds: float
    overlapped_seconds: float
    results_match: bool

    @property
    def speedup(self) -> float:
        if self.overlapped_seconds <= 0:
            return 0.0
        return self.blocking_seconds / self.overlapped_seconds


def run_overlap_demo(
    num_workers: int = 4,
    buckets: int = 8,
    bucket_elements: int = 1 << 15,
    compute_time: float = 0.012,
    iterations: int = 10,
    straggle_factor: float = 2.5,
    seed: int = 0,
    timeout: float = 240.0,
) -> OverlapDemoResult:
    """Measure overlapping vs blocking gradient allreduce on one machine.

    Both variants run the *same* bucketed SGD step — each of ``buckets``
    gradient slices is produced (modelled as offloaded compute that
    releases the CPU, with deterministic per-(rank, iteration, bucket)
    straggler jitter up to ``straggle_factor``) and then exchanged — the
    canonical overlap comparison:

    * **blocking** exchanges each bucket with a blocking ``allreduce`` the
      moment it is ready, so every bucket synchronises on that bucket's
      slowest producer and the straggler penalties *add up* across buckets
      (the process-arrival-pattern amplification the paper targets);
    * **overlapped** issues ``iallreduce`` per bucket and keeps computing —
      the per-bucket pipelines absorb the skew in the background (progress
      thread), and one ``wait_all`` drains the tail.

    Returns per-iteration wall times and whether the two variants produced
    bit-identical reduced gradients.
    """

    def worker(runtime, overlap: bool):
        comm = Communicator(runtime)
        rng = np.random.default_rng(runtime.rank)
        num_params = buckets * bucket_elements
        gradient = rng.random(num_params)
        exchanger = OverlapAllreduce(
            comm, num_params, buckets=buckets, progress_thread=overlap
        )
        out = np.empty(num_params)
        per_bucket = compute_time / buckets
        # Deterministic rotating stragglers: same schedule in both variants.
        jitter = 1.0 + (straggle_factor - 1.0) * np.random.default_rng(
            seed
        ).random((iterations, num_workers, buckets))
        # Warm the per-bucket plans out of the measurement.
        exchanger.exchange(gradient)
        runtime.barrier()
        start = time.perf_counter()
        for it in range(iterations):
            for bucket in range(buckets):
                # this bucket's offloaded backward slice (CPU idle)
                time.sleep(per_bucket * jitter[it, runtime.rank, bucket])
                if overlap:
                    exchanger.issue(gradient, bucket)
                else:
                    begin, end = exchanger.bounds[bucket]
                    comm.allreduce(
                        gradient[begin:end],
                        recvbuf=out[begin:end],
                        algorithm="ring_pipelined",
                    )
            if overlap:
                out[:] = exchanger.finish()
        elapsed = (time.perf_counter() - start) / iterations
        runtime.barrier()
        exchanger.close()
        return elapsed, out

    blocking = run_spmd(num_workers, worker, False, timeout=timeout)
    overlapped = run_spmd(num_workers, worker, True, timeout=timeout)
    match = all(
        np.array_equal(b[1], o[1]) for b, o in zip(blocking, overlapped)
    )
    return OverlapDemoResult(
        blocking_seconds=max(r[0] for r in blocking),
        overlapped_seconds=max(r[0] for r in overlapped),
        results_match=match,
    )
