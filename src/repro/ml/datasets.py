"""Synthetic rating datasets (MovieLens 25M stand-in).

The generator draws user and item factor matrices from a seeded Gaussian,
forms ratings as their inner products plus noise, clips them to a 0.5–5.0
star scale and samples a sparse subset of user/item pairs.  This keeps the
two properties that matter for the paper's experiment: the data is
genuinely low-rank (so MF-SGD converges) and it is large and sparse enough
to shard across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..utils.validation import require


@dataclass
class RatingsDataset:
    """A sparse ratings matrix in coordinate form."""

    users: np.ndarray  # int32 user indices
    items: np.ndarray  # int32 item indices
    ratings: np.ndarray  # float64 ratings
    num_users: int
    num_items: int

    def __post_init__(self) -> None:
        require(
            len(self.users) == len(self.items) == len(self.ratings),
            "users, items and ratings must have the same length",
        )

    @property
    def num_ratings(self) -> int:
        return int(len(self.ratings))

    @property
    def density(self) -> float:
        """Fraction of the full user × item matrix that is observed."""
        total = self.num_users * self.num_items
        return self.num_ratings / total if total else 0.0

    def shard(self, num_shards: int, shard_index: int) -> "RatingsDataset":
        """Rating-wise block shard ``shard_index`` of ``num_shards``.

        Sharding by rating (not by user) keeps every worker's factor
        gradients touching the full model, which is the regime in which the
        workers must exchange dense updates through Allreduce.
        """
        require(num_shards >= 1, "num_shards must be >= 1")
        require(0 <= shard_index < num_shards, "shard_index out of range")
        idx = np.arange(self.num_ratings)
        mine = idx[idx % num_shards == shard_index]
        return RatingsDataset(
            users=self.users[mine],
            items=self.items[mine],
            ratings=self.ratings[mine],
            num_users=self.num_users,
            num_items=self.num_items,
        )

    def subset(self, indices: np.ndarray) -> "RatingsDataset":
        """Dataset restricted to the given rating indices."""
        return RatingsDataset(
            users=self.users[indices],
            items=self.items[indices],
            ratings=self.ratings[indices],
            num_users=self.num_users,
            num_items=self.num_items,
        )


def synthetic_ratings(
    num_users: int = 512,
    num_items: int = 256,
    latent_rank: int = 8,
    num_ratings: int = 20_000,
    noise: float = 0.05,
    seed: int = 0,
) -> RatingsDataset:
    """Generate a low-rank-plus-noise sparse rating matrix.

    Parameters
    ----------
    num_users, num_items:
        Shape of the underlying rating matrix.
    latent_rank:
        Rank of the ground-truth factorisation (the model can recover the
        data when trained with at least this many factors).
    num_ratings:
        Number of observed (user, item, rating) triples (sampled with
        replacement and de-duplicated, so the result may be slightly
        smaller).
    noise:
        Standard deviation of the Gaussian noise added to each rating.
    seed:
        RNG seed; identical seeds produce identical datasets.
    """
    require(num_users >= 1 and num_items >= 1, "matrix dimensions must be positive")
    require(latent_rank >= 1, "latent_rank must be >= 1")
    require(num_ratings >= 1, "num_ratings must be >= 1")
    rng = np.random.default_rng(seed)

    true_user = rng.normal(0.0, 1.0, size=(num_users, latent_rank)) / np.sqrt(latent_rank)
    true_item = rng.normal(0.0, 1.0, size=(num_items, latent_rank)) / np.sqrt(latent_rank)

    users = rng.integers(0, num_users, size=num_ratings)
    items = rng.integers(0, num_items, size=num_ratings)
    # de-duplicate (user, item) pairs to keep the problem well-posed
    keys = users.astype(np.int64) * num_items + items
    _, unique_idx = np.unique(keys, return_index=True)
    users = users[unique_idx]
    items = items[unique_idx]

    raw = np.einsum("ij,ij->i", true_user[users], true_item[items])
    raw = raw + rng.normal(0.0, noise, size=raw.shape)
    # Map to a MovieLens-like 0.5..5.0 star scale.
    raw = 2.75 + 2.25 * np.tanh(raw)
    ratings = np.clip(raw, 0.5, 5.0)

    return RatingsDataset(
        users=users.astype(np.int32),
        items=items.astype(np.int32),
        ratings=ratings.astype(np.float64),
        num_users=num_users,
        num_items=num_items,
    )


def movielens_like(scale: str = "small", seed: int = 0) -> RatingsDataset:
    """MovieLens-shaped presets.

    ``"small"`` is sized for unit tests and CI-scale benchmarks;
    ``"medium"`` for the example scripts; ``"large"`` approaches (a scaled
    down version of) the paper's MovieLens 25M in terms of sparsity, while
    staying tractable on a laptop.
    """
    presets = {
        "small": dict(num_users=256, num_items=128, latent_rank=6, num_ratings=8_000),
        "medium": dict(num_users=2_000, num_items=1_000, latent_rank=10, num_ratings=120_000),
        "large": dict(num_users=10_000, num_items=4_000, latent_rank=16, num_ratings=1_000_000),
    }
    try:
        kwargs = presets[scale]
    except KeyError as exc:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(presets)}") from exc
    return synthetic_ratings(seed=seed, **kwargs)


def train_test_split(
    dataset: RatingsDataset, test_fraction: float = 0.1, seed: int = 0
) -> Tuple[RatingsDataset, RatingsDataset]:
    """Split the ratings into train and held-out test sets."""
    require(0.0 < test_fraction < 1.0, "test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(dataset.num_ratings)
    cut = int(round(dataset.num_ratings * (1.0 - test_fraction)))
    return dataset.subset(idx[:cut]), dataset.subset(idx[cut:])
