"""Convergence metrics for the Figure 6 analysis."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..utils.validation import require


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root-mean-square error between two vectors."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    require(predictions.shape == targets.shape, "shape mismatch")
    if predictions.size == 0:
        return 0.0
    diff = predictions - targets
    return float(np.sqrt(np.mean(diff * diff)))


def time_to_target(
    times: Sequence[float], errors: Sequence[float], target_error: float
) -> Optional[float]:
    """First wall-clock time at which the error drops to ``target_error``.

    This is the quantity behind the paper's "slack = 64 … was 19 % faster"
    claims: fix the error level reached by the slack = 0 run and compare
    when each configuration reaches it.  Returns ``None`` when the target
    is never reached.
    """
    require(len(times) == len(errors), "times and errors must align")
    for t, e in zip(times, errors):
        if e <= target_error:
            return float(t)
    return None


def iterations_to_target(errors: Sequence[float], target_error: float) -> Optional[int]:
    """Number of iterations needed to reach ``target_error`` (1-based)."""
    for i, e in enumerate(errors):
        if e <= target_error:
            return i + 1
    return None


def speedup(baseline_time: Optional[float], other_time: Optional[float]) -> Optional[float]:
    """Relative speed-up of ``other`` vs ``baseline`` (>1 means faster)."""
    if baseline_time is None or other_time is None or other_time == 0:
        return None
    return baseline_time / other_time
