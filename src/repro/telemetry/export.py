"""Exporters: Chrome trace-event JSON and flat snapshot rendering.

Two output formats serve two audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (the ``traceEvents`` array of ``"X"`` complete
  events).  Load the file in `Perfetto <https://ui.perfetto.dev>`_ (or
  ``chrome://tracing``): one timeline row per rank, collective spans with
  the pipelined chunk spans nested inside them.
* :func:`render_summary` — a terminal table of the counters, gauges and
  wait-time percentiles of one (usually merged) snapshot.

:func:`validate_snapshot` is the schema gate the CI smoke step and the
tests share: it accepts both per-rank and merged snapshots and raises
``ValueError`` with a precise complaint on any drift from
``repro-telemetry/v1``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .core import SNAPSHOT_SCHEMA

#: Histogram keys every snapshot histogram must carry.
_HISTOGRAM_KEYS = ("count", "sum", "min", "max", "p50", "p95", "p99", "buckets")


def chrome_trace(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Build a Chrome trace-event document from per-rank snapshots.

    Every rank becomes one timeline row (``tid`` = rank under a single
    ``pid``); span nesting (collective → chunk) follows from timestamp
    containment, which is how the trace viewers stack ``"X"`` events.
    Timestamps are rebased to the earliest span so the trace starts at 0.
    """
    events: List[Dict[str, Any]] = []
    spans: List[tuple] = []
    ranks = set()
    for snap in snapshots:
        rank = int(snap.get("rank", 0))
        for event in snap.get("events", []):
            spans.append((event.get("rank", rank), event))
    origin = min((event["ts"] for _, event in spans), default=0.0)
    for rank, event in spans:
        ranks.add(rank)
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "name": event["name"],
                "cat": event["cat"],
                "ts": (event["ts"] - origin) * 1e6,  # trace format wants µs
                "dur": event["dur"] * 1e6,
                "args": event.get("args", {}),
            }
        )
    metadata: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": 0, "tid": 0,
            "name": "process_name", "args": {"name": "repro collectives"},
        }
    ]
    for rank in sorted(ranks):
        metadata.append(
            {
                "ph": "M", "pid": 0, "tid": rank,
                "name": "thread_name", "args": {"name": f"rank {rank}"},
            }
        )
        metadata.append(
            {
                "ph": "M", "pid": 0, "tid": rank,
                "name": "thread_sort_index", "args": {"sort_index": rank},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SNAPSHOT_SCHEMA},
    }


def write_chrome_trace(path: str, snapshots: Sequence[Dict[str, Any]]) -> None:
    """Write :func:`chrome_trace` of ``snapshots`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(snapshots), fh)


def validate_snapshot(snapshot: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``snapshot`` is a valid v1 snapshot.

    Accepts both forms: per-rank (``rank`` key) and merged
    (``ranks``/``per_rank`` keys).  Used by the CI telemetry smoke step
    and the schema-stability tests.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(f"snapshot schema {schema!r} != {SNAPSHOT_SCHEMA!r}")
    if "rank" not in snapshot and "ranks" not in snapshot:
        raise ValueError("snapshot carries neither 'rank' nor 'ranks'")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            raise ValueError(f"snapshot section {section!r} missing or not a dict")
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int):
            raise ValueError(f"counter {name!r} is {type(value).__name__}, not int")
    for name, gauge in snapshot["gauges"].items():
        for key in ("last", "max"):
            if not isinstance(gauge.get(key), (int, float)):
                raise ValueError(f"gauge {name!r} misses numeric {key!r}")
    for name, hist in snapshot["histograms"].items():
        for key in _HISTOGRAM_KEYS:
            if key not in hist:
                raise ValueError(f"histogram {name!r} misses key {key!r}")
    for key in ("events_recorded", "events_dropped"):
        if not isinstance(snapshot.get(key), int):
            raise ValueError(f"snapshot misses integer {key!r}")


def render_summary(snapshot: Dict[str, Any]) -> str:
    """Terminal rendering of one snapshot: counters, gauges, percentiles."""
    lines: List[str] = []
    ranks = snapshot.get("ranks")
    header = (
        f"telemetry snapshot ({len(ranks)} ranks)"
        if ranks is not None
        else f"telemetry snapshot (rank {snapshot.get('rank', '?')})"
    )
    lines.append(header)
    lines.append("=" * len(header))
    if snapshot["counters"]:
        lines.append("")
        lines.append("counters")
        width = max(len(n) for n in snapshot["counters"])
        for name, value in snapshot["counters"].items():
            lines.append(f"  {name:<{width}}  {value:>14,}")
    if snapshot["gauges"]:
        lines.append("")
        lines.append("gauges (last / max)")
        width = max(len(n) for n in snapshot["gauges"])
        for name, gauge in snapshot["gauges"].items():
            lines.append(
                f"  {name:<{width}}  {gauge['last']:>10.6g} / {gauge['max']:<10.6g}"
            )
    if snapshot["histograms"]:
        lines.append("")
        lines.append("histograms (count, p50 / p95 / p99, max; seconds)")
        width = max(len(n) for n in snapshot["histograms"])
        for name, hist in snapshot["histograms"].items():
            lines.append(
                f"  {name:<{width}}  n={hist['count']:<8} "
                f"{hist['p50'] * 1e6:>9.1f}us / {hist['p95'] * 1e6:>9.1f}us / "
                f"{hist['p99'] * 1e6:>9.1f}us  max {hist['max'] * 1e3:.3f}ms"
            )
    dropped = snapshot.get("events_dropped", 0)
    lines.append("")
    lines.append(
        f"spans: {snapshot.get('events_recorded', 0)} recorded"
        + (f", {dropped} dropped (raise max_events)" if dropped else "")
    )
    return "\n".join(lines)
