"""Low-overhead instrumentation core: spans, counters, gauges, histograms.

The measurement plane of the runtime.  A :class:`Telemetry` registry
aggregates one rank's metrics — monotonic-clock spans for the timeline,
counters and gauges for totals, fixed-bucket latency histograms for
p50/p95/p99 — with costs small enough to leave enabled during benchmark
runs:

* the *disabled* path is a single ``enabled`` attribute check (the
  :data:`NULL_TELEMETRY` singleton's instruments are shared no-ops);
* the *enabled* path takes no locks on the hot counters — one registry
  serves one rank, and under the per-rank threading model (a rank thread
  plus its progress thread) the rare lost increment is an observability
  rounding error, never a correctness one;
* spans are appended to a bounded event list (overflow is counted, not
  grown), so a long run cannot balloon memory.

Cross-backend aggregation goes through :meth:`Telemetry.snapshot` — a
plain-JSON dict — and :func:`merge_snapshots`.  On the threaded backend
the per-rank snapshots are merged in process; on the shm backend each
rank process snapshots its own registry and ships it through the existing
result pipes of :func:`~repro.gaspi.shm.run_shm`, which is exactly how
worker return values already travel.

Timestamps come from :func:`time.perf_counter` (``CLOCK_MONOTONIC``),
which is system-wide on Linux, so spans recorded by different rank
processes of one shm world share a timeline.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Monotonic clock used for every span and wait measurement.
CLOCK = time.perf_counter

#: Schema tag carried by every snapshot (per-rank and merged).
SNAPSHOT_SCHEMA = "repro-telemetry/v1"

#: Default span/event capacity of one registry; overflow increments
#: ``events_dropped`` instead of growing the list.
DEFAULT_MAX_EVENTS = 65_536


def default_latency_bounds() -> Tuple[float, ...]:
    """Fixed geometric bucket bounds for latency histograms (seconds).

    1 µs doubling up to ~33.5 s — 26 buckets spanning everything from a
    notification poll to a detection timeout; values beyond the last
    bound land in the overflow bucket.
    """
    return tuple(1e-6 * (2.0 ** i) for i in range(26))


# --------------------------------------------------------------------------- #
# instruments
# --------------------------------------------------------------------------- #
class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += int(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written value with its observed maximum (e.g. a queue depth)."""

    __slots__ = ("name", "last", "max", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last = 0.0
        self.max = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.last}, max={self.max})"


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    Buckets are upper-bound (``le``) labelled, shared by every instance
    using the same bounds, so per-rank histograms merge by aligning
    bounds.  Percentiles interpolate linearly inside the winning bucket
    and clamp to the observed min/max, which keeps p50/p95/p99 honest at
    small sample counts.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = (
            tuple(float(b) for b in bounds) if bounds else default_latency_bounds()
        )
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        i = bisect.bisect_left(self.bounds, value)
        if i < len(self.counts):
            self.counts[i] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (0-100) of the observed values."""
        pairs = [(le, c) for le, c in zip(self.bounds, self.counts)]
        return percentile_from_buckets(
            pairs, self.overflow, self.count, self.min, self.max, q
        )

    def snapshot(self) -> Dict[str, Any]:
        if self.count == 0:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "buckets": [], "overflow": 0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "buckets": [
                [le, c] for le, c in zip(self.bounds, self.counts) if c > 0
            ],
            "overflow": self.overflow,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


def percentile_from_buckets(
    pairs: Iterable[Tuple[float, int]],
    overflow: int,
    count: int,
    minimum: float,
    maximum: float,
    q: float,
) -> float:
    """Interpolated percentile from ``(upper_bound, count)`` pairs.

    Shared by live histograms and merged snapshots (whose buckets arrive
    as JSON lists).  Values past the last bound (the overflow bucket) are
    attributed the observed maximum.
    """
    if count <= 0:
        return 0.0
    target = (float(q) / 100.0) * count
    cum = 0
    lower = 0.0
    for le, c in sorted(pairs):
        if c > 0:
            if cum + c >= target:
                frac = (target - cum) / c
                estimate = lower + frac * (le - lower)
                return min(max(estimate, minimum), maximum)
            cum += c
        lower = le
    return maximum  # the target sits in the overflow bucket


# --------------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------------- #
class Span:
    """One timed region, recorded as a trace event when the block exits.

    Context manager handed out by :meth:`Telemetry.span`; attributes set
    via :meth:`set` (algorithm, outcome, ...) land in the Chrome trace
    event's ``args``.
    """

    __slots__ = ("_telemetry", "name", "cat", "args", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str, cat: str, args: Dict[str, Any]) -> None:
        self._telemetry = telemetry
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (JSON-serializable values)."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        self._t0 = CLOCK()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._telemetry.record_span(self.name, self.cat, self._t0, CLOCK(), self.args)


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
class Telemetry:
    """Per-rank metrics registry: every instrument of one rank, by name.

    One instance per rank (per rank thread on the threaded backend, per
    rank process on shm).  Instrument creation takes a lock (rare);
    updates do not (hot).  :meth:`snapshot` freezes everything into a
    plain-JSON dict for merging and export.
    """

    enabled = True

    def __init__(self, rank: int = 0, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.rank = int(rank)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._events: List[Dict[str, Any]] = []
        self._max_events = int(max_events)
        self._dropped = 0

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name, bounds))
        return inst

    # ------------------------------------------------------------------ #
    def span(self, name: str, cat: str = "collective", **args: Any) -> Span:
        """Context manager timing one region into the event timeline."""
        return Span(self, name, cat, args)

    def record_span(
        self, name: str, cat: str, t0: float, t1: float, args: Optional[Dict[str, Any]] = None
    ) -> None:
        """Record one already-timed region (spans measured by hand)."""
        if len(self._events) >= self._max_events:
            self._dropped += 1
            return
        self._events.append(
            {"name": name, "cat": cat, "ts": t0, "dur": t1 - t0, "args": args or {}}
        )

    def record_event(self, name: str, cat: str = "health", **args: Any) -> None:
        """Record an instant (zero-duration) event on the timeline.

        State transitions — a failure confirmed, a recovery escalation —
        have no duration of their own but belong on the same per-rank
        timeline as the spans; they export as zero-width slices in the
        Chrome trace.
        """
        now = CLOCK()
        self.record_span(name, cat, now, now, args)

    # ------------------------------------------------------------------ #
    def snapshot(self, events: bool = False) -> Dict[str, Any]:
        """Freeze the registry into a plain-JSON dict.

        ``events=True`` includes the span timeline (needed for Chrome
        trace export); the default metrics-only form stays compact enough
        to embed in benchmark report metadata.
        """
        snap: Dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA,
            "rank": self.rank,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"last": g.last, "max": g.max, "updates": g.updates}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
            "events_recorded": len(self._events),
            "events_dropped": self._dropped,
        }
        if events:
            snap["events"] = list(self._events)
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(rank={self.rank}, counters={len(self._counters)}, "
            f"events={len(self._events)})"
        )


# --------------------------------------------------------------------------- #
# the disabled path
# --------------------------------------------------------------------------- #
class _NullInstrument:
    """Shared no-op counter/gauge/histogram of the disabled registry."""

    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass

    def set(self, value: float = 0.0) -> None:
        pass

    def observe(self, value: float = 0.0) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


class _NullSpan:
    """Shared no-op span of the disabled registry."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled registry: every operation is a shared no-op.

    ``Communicator`` holds this singleton when no telemetry is attached,
    so the disabled hot path is one attribute check (``tel.enabled``) and
    instrument handles cached by subsystems (the progress engine) degrade
    to no-op method calls.  Snapshots keep the v1 schema with empty
    collections, so exporters and schema validators need no special case.
    """

    enabled = False
    rank = -1

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str, cat: str = "collective", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self, name: str, cat: str, t0: float, t1: float, args: Optional[Dict[str, Any]] = None
    ) -> None:
        pass

    def record_event(self, name: str, cat: str = "health", **args: Any) -> None:
        pass

    def snapshot(self, events: bool = False) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA,
            "rank": self.rank,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "events_recorded": 0,
            "events_dropped": 0,
        }
        if events:
            snap["events"] = []
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTelemetry()"


#: The shared disabled registry (one per interpreter is plenty).
NULL_TELEMETRY = NullTelemetry()


# --------------------------------------------------------------------------- #
# merging
# --------------------------------------------------------------------------- #
def _merge_histogram(into: Dict[str, Any], snap: Dict[str, Any]) -> None:
    if snap["count"] == 0:
        return
    if into["count"] == 0:
        into.update(
            count=snap["count"], sum=snap["sum"], min=snap["min"], max=snap["max"]
        )
    else:
        into["count"] += snap["count"]
        into["sum"] += snap["sum"]
        into["min"] = min(into["min"], snap["min"])
        into["max"] = max(into["max"], snap["max"])
    buckets: Dict[float, int] = dict(into.get("_buckets", {}))
    for le, c in snap.get("buckets", []):
        buckets[float(le)] = buckets.get(float(le), 0) + int(c)
    into["_buckets"] = buckets
    into["overflow"] = into.get("overflow", 0) + int(snap.get("overflow", 0))


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-rank snapshots into one world snapshot.

    Counters are summed, gauges take the cross-rank maximum, histograms
    merge bucket-by-bucket with recomputed percentiles, and span events
    (when present) are concatenated with their source rank attached.
    The per-rank counters are kept under ``per_rank`` — that is the
    arrival-skew / imbalance signal the autotuner direction needs.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    per_rank: Dict[str, Dict[str, Any]] = {}
    events: List[Dict[str, Any]] = []
    ranks: List[int] = []
    recorded = 0
    dropped = 0
    have_events = False
    for snap in snapshots:
        rank = int(snap.get("rank", len(ranks)))
        ranks.append(rank)
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, g in snap.get("gauges", {}).items():
            into = gauges.setdefault(name, {"last": 0.0, "max": 0.0, "updates": 0})
            into["last"] = max(into["last"], float(g["last"]))
            into["max"] = max(into["max"], float(g["max"]))
            into["updates"] += int(g.get("updates", 0))
        for name, h in snap.get("histograms", {}).items():
            into = histograms.setdefault(
                name,
                {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "overflow": 0},
            )
            _merge_histogram(into, h)
        per_rank[str(rank)] = {"counters": dict(snap.get("counters", {}))}
        recorded += int(snap.get("events_recorded", 0))
        dropped += int(snap.get("events_dropped", 0))
        if "events" in snap:
            have_events = True
            for event in snap["events"]:
                events.append({**event, "rank": rank})
    for h in histograms.values():
        pairs = sorted(h.pop("_buckets", {}).items())
        h["p50"] = percentile_from_buckets(
            pairs, h["overflow"], h["count"], h["min"], h["max"], 50.0
        )
        h["p95"] = percentile_from_buckets(
            pairs, h["overflow"], h["count"], h["min"], h["max"], 95.0
        )
        h["p99"] = percentile_from_buckets(
            pairs, h["overflow"], h["count"], h["min"], h["max"], 99.0
        )
        h["buckets"] = [[le, c] for le, c in pairs]
    merged: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "ranks": sorted(ranks),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "per_rank": per_rank,
        "events_recorded": recorded,
        "events_dropped": dropped,
    }
    if have_events:
        events.sort(key=lambda e: e["ts"])
        merged["events"] = events
    return merged
