"""Instrumented runtime wrapper: traffic counters and wait histograms.

:class:`TelemetryRuntime` wraps any concrete
:class:`~repro.gaspi.runtime.GaspiRuntime` (threaded, shm, fault-injected
stacks — the same forwarding idiom as
:class:`~repro.analysis.tracing.TracingRuntime`) and feeds a
:class:`~repro.telemetry.core.Telemetry` registry:

* ``runtime.writes`` / ``runtime.bytes_written`` — one-sided posts;
* ``runtime.notifications_posted`` / ``runtime.notifications_consumed``;
* ``runtime.wait_s`` — latency histogram of every *blocking*
  ``notify_waitsome`` (zero-timeout probes are forwarded untimed: the
  progress engine polls them by the thousand);
* ``runtime.barriers`` / ``runtime.barrier_s`` — barrier count and wait
  time, the cheapest live arrival-skew signal a rank has.

The wrapper sits *outside* any fault-injection layer (the communicator
wraps faults first, telemetry last), so posts that a fault plan swallows
still count as posted — telemetry observes what the rank attempted, the
fault plan decides what the wire delivers.  ``notify_drain`` forwards to
the inner runtime's optimised sweep and counts the drained slots
afterwards, unlike tracing, which needs every reset individually.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..gaspi.constants import (
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    GASPI_BLOCK,
)
from ..gaspi.group import Group
from ..gaspi.runtime import GaspiRuntime
from .core import CLOCK, Telemetry


class TelemetryRuntime(GaspiRuntime):
    """Forwarding wrapper that counts traffic into a telemetry registry."""

    def __init__(self, inner: GaspiRuntime, telemetry: Telemetry) -> None:
        self.inner = inner
        self._telemetry = telemetry
        # Instrument handles are resolved once; the hot path then pays a
        # method call and an integer add per operation.
        self._c_writes = telemetry.counter("runtime.writes")
        self._c_bytes = telemetry.counter("runtime.bytes_written")
        self._c_posted = telemetry.counter("runtime.notifications_posted")
        self._c_consumed = telemetry.counter("runtime.notifications_consumed")
        self._c_barriers = telemetry.counter("runtime.barriers")
        self._h_wait = telemetry.histogram("runtime.wait_s")
        self._h_barrier = telemetry.histogram("runtime.barrier_s")

    # -- identity ------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def fault_injected(self) -> bool:
        return self.inner.fault_injected

    @property
    def telemetry(self) -> Telemetry:
        """The live registry (discovered by downstream instrumentation)."""
        return self._telemetry

    # -- segments ------------------------------------------------------- #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        self.inner.segment_create(segment_id, size, num_notifications)

    def segment_delete(self, segment_id: int) -> None:
        self.inner.segment_delete(segment_id)

    def segment_view(
        self,
        segment_id: int,
        dtype: Any = np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        return self.inner.segment_view(segment_id, dtype, offset, count)

    def segment_size(self, segment_id: int) -> int:
        return self.inner.segment_size(segment_id)

    def segment_read(
        self,
        segment_id: int,
        dtype: Any = np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        return self.inner.segment_read(segment_id, dtype, offset, count)

    def segment_bind(self, segment_id: int, array: np.ndarray) -> None:
        self.inner.segment_bind(segment_id, array)

    @property
    def supports_bind(self) -> bool:
        # Defining segment_bind above would otherwise make the base-class
        # probe report bind support the inner runtime may not have.
        return self.inner.supports_bind

    # -- one-sided ------------------------------------------------------ #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        self.inner.write(
            segment_id_local, offset_local, target_rank, segment_id_remote,
            offset_remote, size, queue,
        )
        self._c_writes.add()
        self._c_bytes.add(size)

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self.inner.notify(
            target_rank, segment_id_remote, notification_id, notification_value, queue
        )
        self._c_posted.add()

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self.inner.write_notify(
            segment_id_local, offset_local, target_rank, segment_id_remote,
            offset_remote, size, notification_id, notification_value, queue,
        )
        self._c_writes.add()
        self._c_bytes.add(size)
        self._c_posted.add()

    # -- weak synchronisation ------------------------------------------- #
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        if timeout == 0.0:
            # Zero-timeout polls are the progress engine's pump; counting
            # them would swamp the wait histogram with zeros.
            return self.inner.notify_waitsome(
                segment_id_local, notification_begin, notification_count, timeout
            )
        t0 = CLOCK()
        got = self.inner.notify_waitsome(
            segment_id_local, notification_begin, notification_count, timeout
        )
        self._h_wait.observe(CLOCK() - t0)
        return got

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        value = self.inner.notify_reset(segment_id_local, notification_id)
        if value > 0:
            self._c_consumed.add()
        return value

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        return self.inner.notify_peek(segment_id_local, notification_id)

    def notify_probe(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> bool:
        return self.inner.notify_probe(
            segment_id_local, notification_begin, notification_count
        )

    def notify_drain(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> dict:
        drained = self.inner.notify_drain(
            segment_id_local, notification_begin, notification_count
        )
        if drained:
            self._c_consumed.add(len(drained))
        return drained

    # -- queues / synchronisation --------------------------------------- #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        self.inner.wait(queue, timeout)

    def barrier(
        self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK
    ) -> None:
        t0 = CLOCK()
        self.inner.barrier(group, timeout)
        self._h_barrier.observe(CLOCK() - t0)
        self._c_barriers.add()

    def atomic_fetch_add(
        self, segment_id: int, offset: int, target_rank: int, value: int
    ) -> int:
        return self.inner.atomic_fetch_add(segment_id, offset, target_rank, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetryRuntime({self.inner!r})"
