"""repro.telemetry — the runtime's measurement plane.

Always-available, off-by-default instrumentation for live collective
runs: per-rank metric registries (:class:`Telemetry`), a forwarding
runtime wrapper counting traffic and wait times
(:class:`TelemetryRuntime`), and exporters for Chrome trace-event JSON
and flat metric snapshots.  Enable it by handing a registry to the
communicator::

    from repro import Communicator
    from repro.telemetry import Telemetry, merge_snapshots, render_summary

    def worker(runtime):
        tel = Telemetry(rank=runtime.rank)
        comm = Communicator(runtime, telemetry=tel)
        comm.allreduce(data)
        comm.close()
        return tel.snapshot(events=True)

    snapshots = Communicator.run(8, worker)   # or run_backend(...)
    print(render_summary(merge_snapshots(snapshots)))

Snapshots are plain-JSON dicts, so the shm backend ships them through
the existing per-rank result pipes; ``merge_snapshots`` aggregates them
into the world view either way.  ``python -m repro.telemetry`` runs a
workload cell and renders the summary or writes the Chrome trace; see
the README's "Observability" section.

This plane measures *performance* (latencies, queue depths, traffic).
For *correctness* tracing — replaying a run through the static protocol
checkers — see :mod:`repro.analysis` and ``bench/micro.py --trace``.
"""

from .core import (
    CLOCK,
    DEFAULT_MAX_EVENTS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Telemetry,
    default_latency_bounds,
    merge_snapshots,
    percentile_from_buckets,
)
from .export import (
    chrome_trace,
    render_summary,
    validate_snapshot,
    write_chrome_trace,
)
from .runtime import TelemetryRuntime

__all__ = [
    "CLOCK",
    "DEFAULT_MAX_EVENTS",
    "SNAPSHOT_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TelemetryRuntime",
    "chrome_trace",
    "default_latency_bounds",
    "merge_snapshots",
    "percentile_from_buckets",
    "render_summary",
    "validate_snapshot",
    "write_chrome_trace",
]
