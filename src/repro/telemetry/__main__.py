"""CLI: run one workload cell with telemetry and render or export it.

Examples (from the repository root)::

    # live 8-rank pipelined allreduce, summary table on stdout
    PYTHONPATH=src python -m repro.telemetry --ranks 8 \
        --collective allreduce --algorithm ring_pipelined --bytes 1048576

    # same cell on the process-per-rank backend, Chrome trace to a file
    PYTHONPATH=src python -m repro.telemetry --backend shm --trace out.json

    # machine-readable merged snapshot
    PYTHONPATH=src python -m repro.telemetry --json

The workload is the micro-benchmark cell shape: every rank calls the
collective ``--iters`` times (after one unmeasured warm-up compiling the
plan), each with its own :class:`~repro.telemetry.Telemetry` registry.
Per-rank snapshots travel back through the launcher's result path (the
shm result pipes / the threaded return list) and are merged here.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..gaspi.launch import BACKENDS, run_backend
from .core import Telemetry, merge_snapshots
from .export import render_summary, validate_snapshot, write_chrome_trace


def _cell_worker(
    runtime,
    *,
    collective: str,
    nbytes: int,
    iters: int,
    algorithm: str,
    chunk_bytes: Optional[int],
) -> Dict[str, Any]:
    from ..core.api import Communicator
    from ..core.policy import ConsistencyPolicy

    telemetry = Telemetry(rank=runtime.rank)
    policy = (
        ConsistencyPolicy(chunk_bytes=chunk_bytes) if chunk_bytes else None
    )
    comm = Communicator(runtime, telemetry=telemetry, policy=policy)
    elements = max(1, nbytes // 8)
    sendbuf = np.full(elements, float(runtime.rank) + 1.0, dtype=np.float64)
    recvbuf = np.empty_like(sendbuf)
    if collective == "bcast":
        call = lambda: comm.bcast(sendbuf, root=0, algorithm=algorithm)  # noqa: E731
    elif collective == "reduce":
        call = lambda: comm.reduce(  # noqa: E731
            sendbuf, recvbuf=recvbuf, root=0, algorithm=algorithm
        )
    elif collective == "allreduce":
        call = lambda: comm.allreduce(  # noqa: E731
            sendbuf, recvbuf=recvbuf, algorithm=algorithm
        )
    else:
        raise ValueError(f"unsupported collective {collective!r}")
    call()  # warm-up: compiles the plan outside the recorded window
    comm.barrier()
    for _ in range(iters):
        call()
    resolved = comm.last_result.algorithm
    checksum = float(np.sum(recvbuf)) if collective != "bcast" else float(np.sum(sendbuf))
    comm.close()
    return {
        "rank": runtime.rank,
        "algorithm": resolved,
        "checksum": checksum,
        "snapshot": telemetry.snapshot(events=True),
    }


def run_cell(
    *,
    backend: str = "threaded",
    ranks: int = 8,
    collective: str = "allreduce",
    algorithm: str = "auto",
    nbytes: int = 1_048_576,
    iters: int = 8,
    chunk_bytes: Optional[int] = None,
    timeout: float = 120.0,
) -> Dict[str, Any]:
    """Run the workload cell; returns per-rank results + merged snapshot."""
    results = run_backend(
        ranks,
        _cell_worker,
        backend=backend,
        timeout=timeout,
        collective=collective,
        nbytes=nbytes,
        iters=iters,
        algorithm=algorithm,
        chunk_bytes=chunk_bytes,
    )
    merged = merge_snapshots([r["snapshot"] for r in results])
    return {
        "backend": backend,
        "ranks": ranks,
        "collective": collective,
        "algorithm": results[0]["algorithm"],
        "payload_bytes": nbytes,
        "iterations": iters,
        "checksums": [r["checksum"] for r in results],
        "snapshots": [r["snapshot"] for r in results],
        "merged": merged,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--backend", choices=BACKENDS, default="threaded",
                        help="rank-world substrate (default: threaded)")
    parser.add_argument("--ranks", type=int, default=8,
                        help="world size (default: 8)")
    parser.add_argument("--collective", default="allreduce",
                        choices=("bcast", "reduce", "allreduce"),
                        help="collective to run (default: allreduce)")
    parser.add_argument("--algorithm", default="auto",
                        help="algorithm name or alias (default: auto)")
    parser.add_argument("--bytes", type=int, default=1_048_576, dest="nbytes",
                        help="payload size in bytes (default: 1 MiB)")
    parser.add_argument("--iters", type=int, default=8,
                        help="measured calls per rank (default: 8)")
    parser.add_argument("--chunk-bytes", type=int, default=None,
                        help="pipeline chunk size override (policy.chunk_bytes)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON (Perfetto) here")
    parser.add_argument("--json", action="store_true",
                        help="print the merged snapshot as JSON instead of a table")
    args = parser.parse_args(argv)

    cell = run_cell(
        backend=args.backend,
        ranks=args.ranks,
        collective=args.collective,
        algorithm=args.algorithm,
        nbytes=args.nbytes,
        iters=args.iters,
        chunk_bytes=args.chunk_bytes,
    )
    merged = cell["merged"]
    validate_snapshot(merged)
    if args.trace:
        write_chrome_trace(args.trace, cell["snapshots"])
    if args.json:
        # The merged events are already in the trace file; keep stdout lean.
        print(json.dumps({k: v for k, v in merged.items() if k != "events"}, indent=2))
    else:
        print(
            f"{cell['collective']} [{cell['algorithm']}] x{cell['iterations']}, "
            f"{cell['payload_bytes']} B, {cell['ranks']} ranks, "
            f"backend={cell['backend']}"
        )
        print()
        print(render_summary(merged))
    if args.trace:
        print(f"\nChrome trace written to {args.trace} (load in ui.perfetto.dev)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
