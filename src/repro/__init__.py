"""repro — reproduction of "Efficient and Eventually Consistent Collective Operations".

The package is organised as follows (see DESIGN.md for the full map):

* :mod:`repro.gaspi` — GASPI runtime substrate (segments, one-sided
  write_notify, notifications, queues), executed by one thread per rank.
* :mod:`repro.core` — the paper's collectives: eventually consistent
  Broadcast/Reduce (data/process thresholds), the SSP Allreduce
  (Algorithm 1), the segmented pipelined ring Allreduce, AlltoAll(V) and a
  notification barrier — each with a functional implementation and a
  communication-schedule builder.
* :mod:`repro.mpi` — the Intel-MPI baseline algorithms the paper compares
  against (twelve Allreduce variants, binomial/default Bcast and Reduce,
  Bruck/pairwise/default AlltoAll) plus a two-sided messaging layer.
* :mod:`repro.simulate` — the network timing model and machine presets
  used to regenerate the paper's figures.
* :mod:`repro.ssp`, :mod:`repro.ml` — the Stale Synchronous Parallel
  machinery and the Matrix Factorization / SGD workload of Figures 6–7.
* :mod:`repro.apps` — the FFT mini-app whose AlltoAll traffic motivates
  Figure 13.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
* :mod:`repro.telemetry` — off-by-default runtime metrics: per-rank span
  timelines, counters/gauges/latency histograms and Chrome-trace export.

Quick start::

    import numpy as np
    from repro import run_spmd, Communicator, ConsistencyPolicy

    def worker(runtime):
        comm = Communicator(runtime)
        grad = np.random.default_rng(comm.rank).random(1 << 20)
        total = comm.allreduce(grad, op="sum")     # algorithm="auto"
        comm.bcast(grad, root=0,
                   policy=ConsistencyPolicy.data_threshold(0.25))
        half = comm.split(comm.rank % 2)           # sub-communicator
        return total

    results = run_spmd(8, worker)
"""

__version__ = "1.0.0"

from .gaspi import (
    BACKENDS,
    GaspiError,
    GaspiRuntime,
    GaspiTimeoutError,
    Group,
    GroupRuntime,
    ShmConfig,
    ShmRuntime,
    ShmWorld,
    ThreadedRuntime,
    ThreadedWorld,
    WorldConfig,
    run_backend,
    run_shm,
    run_spmd,
)
from .core import (
    REGISTRY,
    AlgorithmCapabilities,
    AlgorithmInfo,
    ChunkLayout,
    CollectiveHandle,
    CollectiveRequest,
    CollectiveResult,
    Communicator,
    CommunicationSchedule,
    ConsistencyPolicy,
    Message,
    PersistentCollective,
    PlanCacheStats,
    PlanKey,
    Protocol,
    ReductionOp,
    SSPAllreduce,
    TuningTable,
    alltoall,
    alltoallv,
    bst_bcast,
    bst_reduce,
    notification_barrier,
    ring_allgather,
    ring_allreduce,
    select_algorithm,
    ssp_allreduce_once,
)
from .simulate import (
    MachineModel,
    NetworkParameters,
    ScheduleExecutor,
    SimulationResult,
    galileo,
    get_machine,
    marenostrum4,
    simulate_schedule,
    skylake_fdr,
)

# Importing repro.mpi registers the MPI baselines in REGISTRY.
from . import mpi  # noqa: F401  (import for registration side effect)

# Importing repro.faults registers the fault-tolerant collectives.
from . import faults  # noqa: F401  (import for registration side effect)
from .faults import (
    DegradedCollectiveError,
    DegradedResult,
    FaultPlan,
    FaultyRuntime,
    RankCrashedError,
    get_scenario,
    scenario_names,
)
from .telemetry import (
    Telemetry,
    TelemetryRuntime,
    chrome_trace,
    merge_snapshots,
    render_summary,
    write_chrome_trace,
)

__all__ = [
    "__version__",
    # gaspi
    "GaspiError",
    "GaspiRuntime",
    "GaspiTimeoutError",
    "Group",
    "ThreadedRuntime",
    "ThreadedWorld",
    "WorldConfig",
    "ShmConfig",
    "ShmRuntime",
    "ShmWorld",
    "BACKENDS",
    "run_spmd",
    "run_shm",
    "run_backend",
    # core
    "REGISTRY",
    "AlgorithmCapabilities",
    "AlgorithmInfo",
    "CollectiveRequest",
    "CollectiveResult",
    "Communicator",
    "ConsistencyPolicy",
    "PersistentCollective",
    "PlanCacheStats",
    "PlanKey",
    "TuningTable",
    "select_algorithm",
    "GroupRuntime",
    "CommunicationSchedule",
    "Message",
    "Protocol",
    "ReductionOp",
    "SSPAllreduce",
    "alltoall",
    "alltoallv",
    "bst_bcast",
    "bst_reduce",
    "notification_barrier",
    "ring_allgather",
    "ring_allreduce",
    "ssp_allreduce_once",
    # simulate
    "MachineModel",
    "NetworkParameters",
    "ScheduleExecutor",
    "SimulationResult",
    "galileo",
    "get_machine",
    "marenostrum4",
    "simulate_schedule",
    "skylake_fdr",
    "mpi",
    # faults
    "faults",
    "DegradedCollectiveError",
    "DegradedResult",
    "FaultPlan",
    "FaultyRuntime",
    "RankCrashedError",
    "get_scenario",
    "scenario_names",
    # telemetry
    "Telemetry",
    "TelemetryRuntime",
    "chrome_trace",
    "merge_snapshots",
    "render_summary",
    "write_chrome_trace",
]
