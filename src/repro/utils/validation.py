"""Argument validation helpers and small integer math used across modules."""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> None:
    """Ensure ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_fraction(value: float, name: str) -> None:
    """Ensure ``value`` lies in the half-open interval (0, 1]."""
    if not (0.0 < value <= 1.0):
        raise ValueError(f"{name} must lie in (0, 1], got {value}")


def is_power_of_two(n: int) -> bool:
    """True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def check_power_of_two(n: int, name: str) -> None:
    """Ensure ``n`` is a power of two (several hypercube algorithms need this)."""
    if not is_power_of_two(n):
        raise ValueError(f"{name} must be a power of two, got {n}")


def next_power_of_two(n: int) -> int:
    """Smallest power of two greater than or equal to ``n`` (n >= 1)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()


def ceil_log2(n: int) -> int:
    """⌈log2(n)⌉ for n >= 1."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return (n - 1).bit_length()


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def ensure_dtype_match(a: Any, b: Any) -> None:
    """Raise if two NumPy arrays have mismatching dtypes."""
    if a.dtype != b.dtype:
        raise ValueError(f"dtype mismatch: {a.dtype} vs {b.dtype}")
