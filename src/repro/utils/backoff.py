"""Bounded exponential backoff with deterministic jitter.

Every retry loop in the recovery paths used to carry its own fixed
pause (``time.sleep(0.002)`` between rejoin re-drives, one full-budget
barrier attempt in the degraded-entry handshake).  Fixed pauses
synchronise the retriers: after a shared failure event all ranks wake
at the same instant and collide again.  This module centralises the
policy — exponential growth up to a cap, with *deterministic* jitter so
SPMD runs stay replayable: the jitter is a pure function of
``(seed, attempt)`` via the same tuple-seeded generator idiom as
:class:`repro.faults.injection.FaultPlan`, never of process-salted
``hash()`` or wall-clock entropy.

Two layers:

* :class:`BackoffPolicy` — the frozen shape (initial pause, growth
  factor, cap, jitter fraction); :meth:`BackoffPolicy.pause` is a pure
  function of the attempt index.
* :class:`Backoff` — one retry loop's stateful sleeper, bounding the
  loop by a deadline and/or an attempt budget::

      backoff = Backoff(policy, timeout=5.0, seed=rank)
      while not try_once():
          if not backoff.sleep():
              break            # budget exhausted (deadline or attempts)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .validation import require

#: Seeding salt separating backoff jitter streams from the fault plans'.
_BACKOFF_SALT = 15485863


@dataclass(frozen=True)
class BackoffPolicy:
    """Shape of a bounded exponential backoff schedule.

    ``pause(attempt)`` grows as ``initial * factor**attempt`` capped at
    ``max_pause``, then shrinks by up to ``jitter`` of itself (downward
    decorrelation: the cap stays an upper bound, and concurrent retriers
    with different seeds spread out instead of thundering together).
    """

    initial: float = 0.002
    factor: float = 2.0
    max_pause: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        require(self.initial > 0.0, "initial pause must be > 0")
        require(self.factor >= 1.0, "growth factor must be >= 1")
        require(self.max_pause >= self.initial, "max_pause must be >= initial")
        require(0.0 <= self.jitter <= 1.0, "jitter must be a fraction in [0, 1]")

    def pause(self, attempt: int, seed: int = 0) -> float:
        """Pause before retry ``attempt`` (0-based), jittered by ``seed``."""
        require(attempt >= 0, "attempt must be >= 0")
        base = min(self.initial * self.factor ** attempt, self.max_pause)
        if self.jitter == 0.0:
            return base
        rng = np.random.default_rng((int(seed) & 0x7FFFFFFF, _BACKOFF_SALT, attempt))
        return base * (1.0 - self.jitter * float(rng.random()))


#: Default policy of the recovery paths: starts at the old fixed rejoin
#: pause, caps well under any detection timeout.
DEFAULT_BACKOFF = BackoffPolicy()


class Backoff:
    """One retry loop's sleeper: pauses grow per attempt, budget bounded.

    ``sleep()`` returns ``True`` after pausing (retry again) and
    ``False`` once the budget — a wall-clock ``deadline``/``timeout``
    and/or a ``max_attempts`` count — is exhausted, without ever
    sleeping past the deadline.
    """

    def __init__(
        self,
        policy: BackoffPolicy = DEFAULT_BACKOFF,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        max_attempts: Optional[int] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        require(
            timeout is None or deadline is None,
            "pass timeout= or deadline=, not both",
        )
        self._policy = policy
        self._clock = clock
        self._sleep = sleep
        self._seed = int(seed)
        self._attempt = 0
        self._max_attempts = None if max_attempts is None else int(max_attempts)
        if timeout is not None:
            deadline = clock() + float(timeout)
        self._deadline = deadline

    @property
    def attempts(self) -> int:
        """Number of pauses taken so far."""
        return self._attempt

    @property
    def expired(self) -> bool:
        """True once the deadline or attempt budget is exhausted."""
        if self._max_attempts is not None and self._attempt >= self._max_attempts:
            return True
        return self._deadline is not None and self._clock() >= self._deadline

    def remaining(self) -> float:
        """Seconds left until the deadline (``inf`` without one)."""
        if self._deadline is None:
            return float("inf")
        return max(0.0, self._deadline - self._clock())

    def next_pause(self) -> float:
        """The pause ``sleep()`` would take now, clipped to the deadline."""
        pause = self._policy.pause(self._attempt, seed=self._seed)
        return min(pause, self.remaining())

    def sleep(self) -> bool:
        """Pause before the next retry; ``False`` when the budget is gone."""
        if self.expired:
            return False
        pause = self.next_pause()
        self._attempt += 1
        if pause > 0.0:
            self._sleep(pause)
        return not self.expired

    def reset(self) -> None:
        """Restart the exponential schedule (budget deadlines stand)."""
        self._attempt = 0
