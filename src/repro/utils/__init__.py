"""Small shared helpers (logging, validation, byte-size formatting)."""

from .validation import (
    require,
    check_power_of_two,
    check_positive,
    check_fraction,
    is_power_of_two,
    next_power_of_two,
    ceil_log2,
    ceil_div,
)
from .logging import get_logger
from .units import format_bytes, KIB, MIB, GIB
from .backoff import Backoff, BackoffPolicy, DEFAULT_BACKOFF

__all__ = [
    "Backoff",
    "BackoffPolicy",
    "DEFAULT_BACKOFF",
    "require",
    "check_power_of_two",
    "check_positive",
    "check_fraction",
    "is_power_of_two",
    "next_power_of_two",
    "ceil_log2",
    "ceil_div",
    "get_logger",
    "format_bytes",
    "KIB",
    "MIB",
    "GIB",
]
