"""Byte-size constants and human-readable formatting."""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def format_bytes(nbytes: float) -> str:
    """Format a byte count with a binary-prefix unit (e.g. ``'64.0 KiB'``)."""
    nbytes = float(nbytes)
    for unit, factor in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(nbytes) >= factor:
            return f"{nbytes / factor:.1f} {unit}"
    return f"{nbytes:.0f} B"


def doubles(n_elements: int) -> int:
    """Byte size of ``n_elements`` IEEE double-precision values."""
    if n_elements < 0:
        raise ValueError(f"n_elements must be non-negative, got {n_elements}")
    return 8 * n_elements
