"""Lightweight logging configuration for the library.

The library never configures the root logger; it only attaches a
``NullHandler`` so applications decide what to do with log records.
``get_logger`` returns namespaced loggers under ``repro.*``.
"""

from __future__ import annotations

import logging

_BASE = "repro"

logging.getLogger(_BASE).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    ``get_logger("core.allreduce")`` → logger named ``repro.core.allreduce``.
    Passing a name that already starts with ``repro`` keeps it unchanged.
    """
    if name.startswith(_BASE):
        return logging.getLogger(name)
    return logging.getLogger(f"{_BASE}.{name}")


def enable_debug_logging(level: int = logging.DEBUG) -> None:
    """Convenience for examples/benchmarks: log to stderr at ``level``."""
    logger = logging.getLogger(_BASE)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
