"""Logical clocks for SSP contributions.

A contribution's clock is the iteration in which it was computed.  When
two contributions are reduced, the result is only as fresh as the older of
the two, so the combined clock is the *minimum* (paper Section III-A:
"the result of that reduction is associated with the minimum clock of both
contributions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..utils.validation import require


class LogicalClock:
    """Per-worker iteration counter.

    The clock starts at zero ("initial model") and is advanced once per
    iteration (line 1 of Algorithm 1).
    """

    def __init__(self, start: int = 0) -> None:
        require(start >= 0, f"clock must start non-negative, got {start}")
        self._value = int(start)

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        """Advance to the next iteration and return the new value."""
        self._value += 1
        return self._value

    def advance_to(self, value: int) -> int:
        """Move the clock forward to ``value`` (never backwards)."""
        require(value >= self._value, f"clock cannot go backwards ({self._value} -> {value})")
        self._value = int(value)
        return self._value

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"LogicalClock({self._value})"


def combine_clocks(clocks: Iterable[int]) -> int:
    """Clock of a reduction over contributions with the given clocks (min)."""
    clocks = list(clocks)
    require(bool(clocks), "combine_clocks needs at least one clock")
    return min(int(c) for c in clocks)


@dataclass
class ClockedValue:
    """A payload tagged with the logical clock of its contribution."""

    value: np.ndarray
    clock: int

    def staleness(self, current_clock: int) -> int:
        """How many iterations behind ``current_clock`` this value is."""
        return int(current_clock) - int(self.clock)

    def is_fresh_enough(self, current_clock: int, slack: int) -> bool:
        """SSP admissibility test: at most ``slack`` iterations old."""
        return self.staleness(current_clock) <= slack

    def combine(self, other: "ClockedValue", func=np.add) -> "ClockedValue":
        """Reduce two clocked values; the result carries the minimum clock."""
        return ClockedValue(value=func(self.value, other.value), clock=combine_clocks([self.clock, other.clock]))
