"""Deterministic straggler / compute-jitter models.

SSP only pays off when workers drift apart.  On the paper's 32-node
MareNostrum4 runs that drift comes from OS noise, network contention and
data imbalance; in an in-process reproduction we have to inject it
explicitly so the behaviour is reproducible and controllable.

Two models are provided:

* :class:`StragglerProfile` — a fixed per-rank slowdown factor (e.g. one
  rank 1.5× slower than the rest), the classic straggler scenario;
* :class:`UniformJitter` — per-iteration random jitter drawn from a seeded
  RNG, modelling OS noise.

Both expose ``delay(rank, iteration, base_time)`` (how much *extra* time
the iteration takes) and ``sleep(rank, iteration, base_time)`` which
actually blocks the calling worker thread, for use in the threaded SSP
experiments.
"""

from __future__ import annotations

import abc
import time
from typing import Dict, Optional, Sequence

import numpy as np

from ..utils.validation import require


class ComputePerturbation(abc.ABC):
    """Base class of compute-time perturbation models."""

    @abc.abstractmethod
    def delay(self, rank: int, iteration: int, base_time: float) -> float:
        """Extra seconds added to ``base_time`` for this rank/iteration."""

    def total_time(self, rank: int, iteration: int, base_time: float) -> float:
        """Base compute time plus the perturbation."""
        return base_time + self.delay(rank, iteration, base_time)

    def sleep(self, rank: int, iteration: int, base_time: float) -> float:
        """Block the calling thread for the perturbed duration (returns it)."""
        duration = self.total_time(rank, iteration, base_time)
        if duration > 0:
            time.sleep(duration)
        return duration


class NoPerturbation(ComputePerturbation):
    """All ranks take exactly the base time (useful as a control)."""

    def delay(self, rank: int, iteration: int, base_time: float) -> float:
        return 0.0


class StragglerProfile(ComputePerturbation):
    """Fixed per-rank slowdown factors.

    Parameters
    ----------
    slowdown:
        Mapping rank → multiplicative slowdown (1.0 = nominal speed).  Ranks
        not present run at nominal speed.
    """

    def __init__(self, slowdown: Dict[int, float]) -> None:
        for rank, factor in slowdown.items():
            require(rank >= 0, "ranks must be non-negative")
            require(factor >= 1.0, f"slowdown factors must be >= 1.0, got {factor}")
        self.slowdown = dict(slowdown)

    @classmethod
    def single_straggler(cls, rank: int, factor: float = 2.0) -> "StragglerProfile":
        """One rank runs ``factor`` times slower than everyone else."""
        return cls({rank: factor})

    @classmethod
    def linear(cls, num_ranks: int, max_factor: float = 1.5) -> "StragglerProfile":
        """Slowdown grows linearly with the rank id up to ``max_factor``.

        Produces a spread of worker speeds, which is the regime where the
        iteration-rate curves of Figure 6 (right) separate by slack.
        """
        require(num_ranks >= 1, "num_ranks must be >= 1")
        require(max_factor >= 1.0, "max_factor must be >= 1.0")
        if num_ranks == 1:
            return cls({})
        return cls(
            {
                rank: 1.0 + (max_factor - 1.0) * rank / (num_ranks - 1)
                for rank in range(num_ranks)
            }
        )

    def delay(self, rank: int, iteration: int, base_time: float) -> float:
        return base_time * (self.slowdown.get(rank, 1.0) - 1.0)


class UniformJitter(ComputePerturbation):
    """Per-iteration uniform jitter in ``[0, amplitude] * base_time``.

    The jitter is a pure function of ``(seed, rank, iteration)`` so repeated
    runs are identical.
    """

    def __init__(self, amplitude: float = 0.5, seed: int = 0) -> None:
        require(amplitude >= 0.0, "amplitude must be non-negative")
        self.amplitude = float(amplitude)
        self.seed = int(seed)

    def delay(self, rank: int, iteration: int, base_time: float) -> float:
        rng = np.random.default_rng((self.seed, rank, iteration))
        return float(rng.uniform(0.0, self.amplitude)) * base_time


def perturbation_from_spec(
    spec: str,
    num_ranks: int,
    seed: int = 0,
) -> ComputePerturbation:
    """Build a perturbation model from a short textual spec.

    Supported specs: ``"none"``, ``"straggler:<rank>:<factor>"``,
    ``"linear:<max_factor>"``, ``"jitter:<amplitude>"``.  Used by examples
    and benchmarks to keep their command lines compact.
    """
    if spec == "none":
        return NoPerturbation()
    parts = spec.split(":")
    kind = parts[0]
    if kind == "straggler":
        rank = int(parts[1]) if len(parts) > 1 else num_ranks - 1
        factor = float(parts[2]) if len(parts) > 2 else 2.0
        return StragglerProfile.single_straggler(rank, factor)
    if kind == "linear":
        max_factor = float(parts[1]) if len(parts) > 1 else 1.5
        return StragglerProfile.linear(num_ranks, max_factor)
    if kind == "jitter":
        amplitude = float(parts[1]) if len(parts) > 1 else 0.5
        return UniformJitter(amplitude, seed=seed)
    raise ValueError(f"unknown perturbation spec {spec!r}")
