"""A minimal SSP parameter store (Parameter Server style).

The paper's conclusions name the Parameter Server architecture — the
setting where SSP is usually deployed — as the natural next step for
``allreduce_ssp``.  This module provides that extension in miniature: a
thread-safe, versioned parameter store with SSP read semantics, so the
example applications can be written either against the collective
(decentralised) or against the store (centralised) and compared.

It is an extension beyond the paper's figures and is exercised by unit
tests and the ``examples/ssp_matrix_factorization.py`` ``--parameter-server``
mode, not by any figure benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..utils.validation import require
from .staleness import SSPConfig


@dataclass
class StaleRead:
    """Result of an SSP read: the value, its clock and whether we blocked."""

    value: np.ndarray
    clock: int
    waited: bool
    wait_time: float


class SSPParameterStore:
    """Versioned parameter store with bounded-staleness reads.

    Writers push per-worker updates tagged with their iteration; the store
    maintains, per key, the aggregated value at each clock.  A reader at
    iteration ``c`` with slack ``s`` is served the newest aggregate whose
    clock is at least ``c - s``; if none exists yet the read blocks until
    enough workers have contributed.
    """

    def __init__(self, num_workers: int, config: SSPConfig) -> None:
        require(num_workers >= 1, "num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.config = config
        self._lock = threading.Condition()
        # key -> clock -> (aggregate, contributions)
        self._versions: Dict[str, Dict[int, tuple]] = {}
        # worker clocks, to compute the globally completed clock
        self._worker_clock: Dict[int, int] = {w: 0 for w in range(self.num_workers)}

    # ------------------------------------------------------------------ #
    def push(self, key: str, worker: int, clock: int, update: np.ndarray) -> None:
        """Add a worker's update for ``key`` at ``clock`` (sum-aggregated)."""
        require(0 <= worker < self.num_workers, f"invalid worker {worker}")
        require(clock >= 1, "clocks start at 1")
        update = np.asarray(update, dtype=np.float64)
        with self._lock:
            versions = self._versions.setdefault(key, {})
            if clock not in versions:
                versions[clock] = (np.zeros_like(update), 0)
            aggregate, count = versions[clock]
            versions[clock] = (aggregate + update, count + 1)
            self._worker_clock[worker] = max(self._worker_clock[worker], clock)
            self._lock.notify_all()

    def completed_clock(self, key: str) -> int:
        """Newest clock for which *every* worker has contributed to ``key``."""
        with self._lock:
            return self._completed_clock_locked(key)

    def _completed_clock_locked(self, key: str) -> int:
        versions = self._versions.get(key, {})
        complete = [c for c, (_agg, count) in versions.items() if count >= self.num_workers]
        return max(complete) if complete else 0

    def read(
        self,
        key: str,
        reader_clock: int,
        timeout: Optional[float] = 30.0,
    ) -> StaleRead:
        """SSP read: newest complete aggregate no staler than the slack allows.

        Blocks until the aggregate at clock ``reader_clock - slack`` (or
        newer) is complete, mirroring lines 8–11 of Algorithm 1.
        """
        import time

        min_clock = self.config.min_clock_accepted(reader_clock)
        start = time.perf_counter()
        waited = False
        with self._lock:
            while True:
                completed = self._completed_clock_locked(key)
                if completed >= min_clock:
                    clock = completed
                    aggregate, _count = self._versions[key][clock] if clock > 0 else (None, 0)
                    value = (
                        aggregate.copy()
                        if aggregate is not None
                        else np.zeros(0, dtype=np.float64)
                    )
                    return StaleRead(
                        value=value,
                        clock=clock,
                        waited=waited,
                        wait_time=time.perf_counter() - start,
                    )
                waited = True
                remaining = None if timeout is None else timeout - (time.perf_counter() - start)
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"SSP read of {key!r} at clock {reader_clock} timed out; "
                        f"completed clock is {completed}, need >= {min_clock}"
                    )
                self._lock.wait(remaining)

    def garbage_collect(self, key: str, keep_from_clock: int) -> int:
        """Drop aggregates older than ``keep_from_clock``; returns #dropped."""
        with self._lock:
            versions = self._versions.get(key, {})
            old = [c for c in versions if c < keep_from_clock]
            for c in old:
                del versions[c]
            return len(old)
