"""Slack configuration and staleness accounting.

:class:`StalenessTracker` is the bookkeeping behind the right-hand plot of
Figure 7 ("time spent waiting for fresh updates") and the staleness
histograms in the SSP example: it records, per iteration, how stale the
data a worker consumed was and how long the worker had to block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..utils.validation import require


class StalenessViolation(RuntimeError):
    """Raised when a consumer is handed data staler than the allowed slack."""


@dataclass(frozen=True)
class SSPConfig:
    """Slack (allowed staleness, in iterations) of an SSP execution.

    ``slack = 0`` is Bulk Synchronous Parallel; larger values let fast
    workers run ahead of slow ones by up to ``slack`` iterations.
    """

    slack: int = 0

    def __post_init__(self) -> None:
        require(self.slack >= 0, f"slack must be non-negative, got {self.slack}")

    def min_clock_accepted(self, current_clock: int) -> int:
        """Oldest contribution clock admissible at ``current_clock``."""
        return current_clock - self.slack

    def admissible(self, contribution_clock: int, current_clock: int) -> bool:
        """True when a contribution may be consumed without waiting."""
        return contribution_clock >= self.min_clock_accepted(current_clock)

    def check(self, contribution_clock: int, current_clock: int) -> None:
        """Raise :class:`StalenessViolation` when the SSP bound is violated."""
        if not self.admissible(contribution_clock, current_clock):
            raise StalenessViolation(
                f"contribution from clock {contribution_clock} is staler than "
                f"slack {self.slack} at clock {current_clock}"
            )


@dataclass
class StalenessTracker:
    """Accumulates per-iteration staleness and wait-time statistics."""

    slack: int = 0
    iterations: int = 0
    total_wait_time: float = 0.0
    waits: int = 0
    staleness_histogram: Dict[int, int] = field(default_factory=dict)
    wait_times: List[float] = field(default_factory=list)

    def record_iteration(self, staleness: int, wait_time: float, waited: bool) -> None:
        """Record one iteration's observed staleness and blocking time."""
        require(staleness >= 0, f"staleness must be non-negative, got {staleness}")
        require(wait_time >= 0.0, "wait_time must be non-negative")
        self.iterations += 1
        self.total_wait_time += wait_time
        self.wait_times.append(wait_time)
        if waited:
            self.waits += 1
        self.staleness_histogram[staleness] = self.staleness_histogram.get(staleness, 0) + 1

    @property
    def mean_wait_time(self) -> float:
        """Average blocking time per iteration (Figure 7, right)."""
        return self.total_wait_time / self.iterations if self.iterations else 0.0

    @property
    def wait_fraction(self) -> float:
        """Fraction of iterations in which the worker had to block."""
        return self.waits / self.iterations if self.iterations else 0.0

    @property
    def max_staleness(self) -> int:
        """Largest staleness ever consumed (must never exceed ``slack``)."""
        return max(self.staleness_histogram) if self.staleness_histogram else 0

    def mean_staleness(self) -> float:
        """Average staleness of the consumed reductions."""
        if not self.staleness_histogram:
            return 0.0
        total = sum(s * c for s, c in self.staleness_histogram.items())
        count = sum(self.staleness_histogram.values())
        return total / count

    def merge(self, other: "StalenessTracker") -> "StalenessTracker":
        """Combine trackers from several workers into a cluster-wide view."""
        merged = StalenessTracker(slack=max(self.slack, other.slack))
        merged.iterations = self.iterations + other.iterations
        merged.total_wait_time = self.total_wait_time + other.total_wait_time
        merged.waits = self.waits + other.waits
        merged.wait_times = self.wait_times + other.wait_times
        for hist in (self.staleness_histogram, other.staleness_histogram):
            for k, v in hist.items():
                merged.staleness_histogram[k] = merged.staleness_histogram.get(k, 0) + v
        return merged
