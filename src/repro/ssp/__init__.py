"""Stale Synchronous Parallel (SSP) substrate.

The SSP model (Cui et al., Ho et al. — references [3] and [4] of the
paper) lets iterative-convergent algorithms read parameter state that is
up to ``slack`` iterations old.  This package holds the machinery shared
by the SSP allreduce and the ML workload:

* :mod:`repro.ssp.clock` — logical clocks and clock-tagged values
  (reduction takes the minimum clock, as in Algorithm 1);
* :mod:`repro.ssp.staleness` — slack configuration and staleness
  accounting (wait counts, wait time, staleness histogram);
* :mod:`repro.ssp.perturbation` — a deterministic straggler model that
  makes some workers slower, which is what creates the clock drift SSP
  exploits (on a real cluster the OS noise and data imbalance provide it);
* :mod:`repro.ssp.store` — a minimal SSP parameter store (the "Parameter
  Server architecture" the paper's conclusions point to as future work).
"""

from .clock import ClockedValue, LogicalClock, combine_clocks
from .staleness import SSPConfig, StalenessTracker, StalenessViolation
from .perturbation import ComputePerturbation, UniformJitter, StragglerProfile
from .store import SSPParameterStore, StaleRead

__all__ = [
    "ClockedValue",
    "LogicalClock",
    "combine_clocks",
    "SSPConfig",
    "StalenessTracker",
    "StalenessViolation",
    "ComputePerturbation",
    "UniformJitter",
    "StragglerProfile",
    "SSPParameterStore",
    "StaleRead",
]
