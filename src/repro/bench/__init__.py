"""Benchmark harness: one experiment definition per paper figure.

``benchmarks/`` (pytest-benchmark) calls into this package; every figure
of the paper's evaluation section has a function in
:mod:`repro.bench.experiments` that regenerates its data — either by
simulating collective schedules on a machine model (Figures 8–13) or by
running the threaded SSP/ML experiment (Figures 6–7) — and
:mod:`repro.bench.report` renders the same rows/series the paper plots.
"""

from .stats import Measurement, confidence_interval_95, summarize
from .harness import (
    SweepPoint,
    TimingExperiment,
    run_node_sweep,
    run_size_sweep,
    time_algorithm,
)
from .report import (
    format_comparison,
    format_kv_table,
    format_series_table,
    series_to_rows,
)
from . import experiments
from . import faults

__all__ = [
    "Measurement",
    "confidence_interval_95",
    "summarize",
    "SweepPoint",
    "TimingExperiment",
    "run_node_sweep",
    "run_size_sweep",
    "time_algorithm",
    "format_series_table",
    "format_comparison",
    "format_kv_table",
    "series_to_rows",
    "experiments",
    "faults",
]
