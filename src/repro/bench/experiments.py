"""Per-figure experiment definitions (the reproduction of Section V).

Every public ``figNN_*`` function regenerates the data behind one figure
of the paper.  Each returns a plain dictionary with:

* ``figure`` / ``title`` — identification;
* ``series`` — ``{line label: [SweepPoint...]}`` (timing figures) or
  structured records (SSP figures);
* ``paper_expectation`` — the qualitative claim from the paper that
  EXPERIMENTS.md checks against.

The ``scale`` argument keeps benchmark runtimes reasonable:

* ``"paper"`` — the exact node counts / message sizes of the paper
  (pure simulation figures only; the threaded SSP runs stay scaled down);
* ``"small"`` — reduced sweeps for CI and pytest-benchmark runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.policy import ConsistencyPolicy
from ..core.registry import REGISTRY
from ..ml.datasets import movielens_like
from ..ml.sgd import DistributedSGDConfig, run_slack_sweep
from ..simulate.machine import galileo, marenostrum4, skylake_fdr
from ..utils.validation import require
from .harness import TimingExperiment, crossover_point, run_node_sweep, run_size_sweep

DOUBLE = 8  # bytes per double-precision element


def _node_counts(scale: str) -> List[int]:
    return [2, 4, 8, 16, 32] if scale == "paper" else [2, 4, 8, 16]


def _check_scale(scale: str) -> None:
    require(scale in ("paper", "small"), f"scale must be 'paper' or 'small', got {scale!r}")


# --------------------------------------------------------------------------- #
# Figure 6 — allreduce_SSP impact on MF-SGD convergence
# --------------------------------------------------------------------------- #
def fig06_ssp_convergence(scale: str = "small", seed: int = 0) -> Dict:
    """Figure 6: convergence speed and iteration rate of MF-SGD vs slack.

    The paper trains on MovieLens 25M with 32 workers and slack ∈
    {0, 2, 32, 64}; the reproduction trains on a synthetic MovieLens-like
    dataset with a scaled-down worker count and slack grid, preserving the
    claim under test: *larger slack ⇒ more iterations per second and a
    shorter time to the reference error*.
    """
    _check_scale(scale)
    if scale == "paper":
        workers, iterations, slacks = 8, 120, [0, 2, 8, 16]
        dataset = movielens_like("medium", seed=seed)
    else:
        workers, iterations, slacks = 4, 40, [0, 2, 8]
        dataset = movielens_like("small", seed=seed)

    config = DistributedSGDConfig(
        num_workers=workers,
        iterations=iterations,
        slack=0,
        algorithm="ssp",
        base_compute_time=0.0015,
        perturbation="linear:1.8",
        seed=seed,
    )
    sweep = run_slack_sweep(dataset, slacks, config)
    records = {
        slack: {
            "iterations_per_second": entry.mean_iterations_per_second,
            "wait_time_per_iteration": entry.mean_wait_time_per_iteration,
            "final_rmse": entry.final_rmse,
            "time_to_target": entry.time_to_target,
            "iterations_to_target": entry.iterations_to_target,
            "total_time": entry.total_time,
            "error_curve": [
                (r.elapsed, r.train_rmse) for r in entry.worker_results[0].records
            ],
            "iteration_curve": [
                (r.elapsed, r.iteration) for r in entry.worker_results[0].records
            ],
        }
        for slack, entry in sweep.items()
    }
    return {
        "figure": "fig06",
        "title": "allreduce_SSP impact on MF-SGD convergence (32 MareNostrum4 nodes in the paper)",
        "workers": workers,
        "slacks": slacks,
        "series": records,
        "paper_expectation": (
            "higher slack gives more iterations per unit time and reaches the "
            "reference error faster (paper: 6%/12.3%/19% faster for slack 2/32/64)"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 7 — allreduce_SSP collective execution time and wait time
# --------------------------------------------------------------------------- #
def fig07_ssp_collective(scale: str = "small", seed: int = 0) -> Dict:
    """Figure 7: SSP collective execution time (left) and wait time (right).

    Left: simulated collective execution time of the hypercube-based
    ``allreduce_ssp`` against the MPI default Allreduce and
    ``gaspi_allreduce_ring`` on the MareNostrum4 model (32 ranks, large
    vector) — the paper finds the SSP hypercube ≥ ~1.6× slower because it
    moves the whole vector every step.

    Right: measured time waiting for fresh updates per iteration as a
    function of slack, from the threaded SSP runtime with a straggler
    profile — the paper finds it shrinks towards zero as slack grows.
    """
    _check_scale(scale)
    num_ranks = 32 if scale == "paper" else 16
    elements = 1_000_000 if scale == "paper" else 250_000
    machine = marenostrum4(num_ranks).with_ranks(num_ranks)

    from .harness import time_algorithm

    left = {
        "allreduce_ssp (hypercube)": time_algorithm(
            "gaspi_allreduce_ssp_hypercube", num_ranks, elements * DOUBLE, machine
        ),
        "gaspi_allreduce_ring": time_algorithm(
            "gaspi_allreduce_ring", num_ranks, elements * DOUBLE, machine
        ),
        "mpi_allreduce_default": time_algorithm(
            "mpi_allreduce_default", num_ranks, elements * DOUBLE, machine
        ),
    }

    if scale == "paper":
        workers, iterations, slacks = 8, 80, [0, 1, 2, 4, 8, 16]
    else:
        workers, iterations, slacks = 4, 30, [0, 1, 2, 4]
    dataset = movielens_like("small", seed=seed)
    config = DistributedSGDConfig(
        num_workers=workers,
        iterations=iterations,
        algorithm="ssp",
        base_compute_time=0.0015,
        perturbation="linear:1.8",
        seed=seed,
    )
    sweep = run_slack_sweep(dataset, slacks, config)
    right = {
        slack: entry.mean_wait_time_per_iteration for slack, entry in sweep.items()
    }
    return {
        "figure": "fig07",
        "title": "allreduce_SSP collective execution speed and waiting time",
        "series": {"collective_time": left, "wait_time_by_slack": right},
        "paper_expectation": (
            "allreduce_ssp is slower than the ring/MPI allreduce for large vectors "
            "(~1.6x), but the time spent waiting for fresh updates decreases as "
            "slack grows, vanishing for large slack"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 8 — eventually consistent Broadcast
# --------------------------------------------------------------------------- #
def fig08_bcast(scale: str = "small", elements: int = 10_000) -> Dict:
    """Figure 8: BST broadcast with data thresholds vs MPI (SkyLake nodes).

    The paper shows two panels (10 000 and 1 000 000 doubles); call this
    once per panel with ``elements`` set accordingly.
    """
    _check_scale(scale)
    experiment = TimingExperiment(
        name="fig08_bcast",
        machine=skylake_fdr(),
        algorithms={
            "25% gaspi": "gaspi_bcast_bst",
            "50% gaspi": "gaspi_bcast_bst",
            "75% gaspi": "gaspi_bcast_bst",
            "100% gaspi": "gaspi_bcast_bst",
            "100% mpi-def": "mpi_bcast_default",
            "100% mpi-bin": "mpi_bcast_binomial",
        },
        policies={
            "25% gaspi": ConsistencyPolicy.data_threshold(0.25),
            "50% gaspi": ConsistencyPolicy.data_threshold(0.50),
            "75% gaspi": ConsistencyPolicy.data_threshold(0.75),
            "100% gaspi": ConsistencyPolicy.strict(),
        },
    )
    series = run_node_sweep(experiment, _node_counts(scale), elements * DOUBLE)
    return {
        "figure": "fig08",
        "title": f"Broadcast on SkyLake nodes, {elements} doubles",
        "elements": elements,
        "series": series,
        "paper_expectation": (
            "shipping 25% of the data is ~3.2-3.6x faster than 100%; MPI wins for "
            "small arrays while the GASPI BST becomes competitive for large arrays "
            "and node counts"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 9 — eventually consistent Reduce (data threshold)
# --------------------------------------------------------------------------- #
def fig09_reduce(scale: str = "small", elements: int = 10_000) -> Dict:
    """Figure 9: BST reduce with data thresholds vs MPI (SkyLake nodes)."""
    _check_scale(scale)
    experiment = TimingExperiment(
        name="fig09_reduce",
        machine=skylake_fdr(),
        algorithms={
            "25% gaspi": "gaspi_reduce_bst",
            "50% gaspi": "gaspi_reduce_bst",
            "75% gaspi": "gaspi_reduce_bst",
            "100% gaspi": "gaspi_reduce_bst",
            "100% mpi-def": "mpi_reduce_default",
            "100% mpi-bin": "mpi_reduce_binomial",
        },
        policies={
            "25% gaspi": ConsistencyPolicy.data_threshold(0.25),
            "50% gaspi": ConsistencyPolicy.data_threshold(0.50),
            "75% gaspi": ConsistencyPolicy.data_threshold(0.75),
            "100% gaspi": ConsistencyPolicy.strict(),
        },
    )
    series = run_node_sweep(experiment, _node_counts(scale), elements * DOUBLE)
    return {
        "figure": "fig09",
        "title": f"Reduce on SkyLake nodes, {elements} doubles",
        "elements": elements,
        "series": series,
        "paper_expectation": (
            "the 25% vs 100% gap grows with message size (~5x at 8 MB); the MPI "
            "default stays fastest at full data while gaspi_reduce beats the MPI "
            "binomial variant from ~10,000 elements"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 10 — Reduce with a fraction of the processes
# --------------------------------------------------------------------------- #
def fig10_reduce_processes(scale: str = "small", elements: int = 1_000_000) -> Dict:
    """Figure 10: full-data reduce engaging only a fraction of the processes."""
    _check_scale(scale)
    experiment = TimingExperiment(
        name="fig10_reduce_processes",
        machine=skylake_fdr(),
        algorithms={
            "25% procs gaspi": "gaspi_reduce_bst",
            "50% procs gaspi": "gaspi_reduce_bst",
            "75% procs gaspi": "gaspi_reduce_bst",
            "100% procs gaspi": "gaspi_reduce_bst",
            "100% mpi-def": "mpi_reduce_default",
            "100% mpi-bin": "mpi_reduce_binomial",
        },
        policies={
            "25% procs gaspi": ConsistencyPolicy.process_threshold(0.25),
            "50% procs gaspi": ConsistencyPolicy.process_threshold(0.50),
            "75% procs gaspi": ConsistencyPolicy.process_threshold(0.75),
            "100% procs gaspi": ConsistencyPolicy.process_threshold(1.0),
        },
    )
    series = run_node_sweep(experiment, _node_counts(scale), elements * DOUBLE)
    return {
        "figure": "fig10",
        "title": f"Reduce with a fraction of processes, {elements} doubles",
        "elements": elements,
        "series": series,
        "paper_expectation": (
            "slower than the data-threshold reduce but still better than the MPI "
            "binomial variant; the 75% and 100% lines coincide because half of all "
            "processes join only in the last BST stage"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 11 — consistent Allreduce vs the 12 MPI variants (node sweep)
# --------------------------------------------------------------------------- #
def fig11_allreduce_nodes(scale: str = "small", elements: int = 10_000) -> Dict:
    """Figure 11: gaspi_allreduce_ring vs mpi1..mpi12 over the node count."""
    _check_scale(scale)
    algorithms = {"gaspi": "gaspi_allreduce_ring"}
    for key in REGISTRY.names(collective="allreduce", family="mpi"):
        if key.endswith("default"):
            continue
        short = key.replace("mpi_allreduce_", "").split("_")[0]  # mpi1..mpi12
        algorithms[short] = key
    experiment = TimingExperiment(
        name="fig11_allreduce_nodes",
        machine=skylake_fdr(),
        algorithms=algorithms,
    )
    series = run_node_sweep(experiment, _node_counts(scale), elements * DOUBLE)
    return {
        "figure": "fig11",
        "title": f"Allreduce on SkyLake nodes, {elements} doubles",
        "elements": elements,
        "series": series,
        "paper_expectation": (
            "MPI variants win for 10,000 doubles; gaspi_allreduce_ring wins for "
            "1,000,000 doubles (paper: 1.78x vs Shumilin's ring, 2.26x vs ring)"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 12 — consistent Allreduce message-size sweep on 32 nodes
# --------------------------------------------------------------------------- #
def fig12_allreduce_sizes(scale: str = "small") -> Dict:
    """Figure 12: Allreduce time vs message size on 32 SkyLake nodes."""
    _check_scale(scale)
    num_nodes = 32 if scale == "paper" else 16
    if scale == "paper":
        element_counts: Sequence[int] = [2**k for k in range(10, 24)]  # 1 K .. 8.4 M
    else:
        element_counts = [2**k for k in range(10, 21, 2)]  # 1 K .. 1 M
    algorithms = {"gaspi": "gaspi_allreduce_ring"}
    for key in REGISTRY.names(collective="allreduce", family="mpi"):
        if key.endswith("default"):
            continue
        short = key.replace("mpi_allreduce_", "").split("_")[0]
        algorithms[short] = key
    experiment = TimingExperiment(
        name="fig12_allreduce_sizes",
        machine=skylake_fdr(num_nodes),
        algorithms=algorithms,
    )
    series = run_size_sweep(experiment, [n * DOUBLE for n in element_counts], num_nodes)
    best_mpi = {
        label: pts
        for label, pts in series.items()
        if label != "gaspi"
    }
    crossovers = {
        label: crossover_point(series["gaspi"], pts) for label, pts in best_mpi.items()
    }
    return {
        "figure": "fig12",
        "title": f"Allreduce on {num_nodes} SkyLake nodes, message-size sweep",
        "element_counts": list(element_counts),
        "series": series,
        "crossover_bytes": crossovers,
        "paper_expectation": (
            "MPI is faster up to ~1 MB; from ~2 MB the GASPI ring outperforms every "
            "MPI variant, peaking around 2.1x against the ring variants at 64 MB"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 13 — AlltoAll on Galileo (hybrid, 4 processes per node)
# --------------------------------------------------------------------------- #
def fig13_alltoall(scale: str = "small") -> Dict:
    """Figure 13: GASPI AlltoAll vs MPI AlltoAll on Galileo, 4 ppn."""
    _check_scale(scale)
    node_counts = [4, 8, 16] if scale == "paper" else [4, 8]
    if scale == "paper":
        block_sizes: Sequence[int] = [2**k for k in range(2, 18)]  # 4 B .. 128 KiB
    else:
        block_sizes = [2**k for k in range(4, 17, 2)]
    series_by_nodes: Dict[int, Dict] = {}
    for nodes in node_counts:
        experiment = TimingExperiment(
            name=f"fig13_alltoall_{nodes}nodes",
            machine=galileo(nodes),
            algorithms={
                f"gaspi{nodes}": "gaspi_alltoall",
                f"mpi{nodes}": "mpi_alltoall_default",
            },
        )
        series = run_size_sweep(experiment, block_sizes, nodes, ranks_per_node=4)
        series_by_nodes[nodes] = {
            "series": series,
            "crossover_bytes": crossover_point(
                series[f"gaspi{nodes}"], series[f"mpi{nodes}"]
            ),
        }
    return {
        "figure": "fig13",
        "title": "AlltoAll on Galileo (4 processes per node)",
        "block_sizes": list(block_sizes),
        "series": series_by_nodes,
        "paper_expectation": (
            "GASPI and MPI are comparable up to ~1 KB blocks; from ~2 KB the GASPI "
            "AlltoAll wins, reaching 2.85x/5.14x/5.07x on 4/8/16 nodes around 32 KB "
            "blocks — the 6-24 KB range used by the Quantum Espresso FFT"
        ),
    }


#: Figure id → experiment callable, used by the EXPERIMENTS.md generator and
#: by the benchmark modules.
ALL_EXPERIMENTS = {
    "fig06": fig06_ssp_convergence,
    "fig07": fig07_ssp_collective,
    "fig08": fig08_bcast,
    "fig09": fig09_reduce,
    "fig10": fig10_reduce_processes,
    "fig11": fig11_allreduce_nodes,
    "fig12": fig12_allreduce_sizes,
    "fig13": fig13_alltoall,
}
