"""Statistics helpers matching the paper's reporting methodology.

The paper reports, for every message size / node count, the average over
100 executions together with a 95 % confidence interval.  The simulator is
deterministic, so the figure benchmarks report single simulated values;
the threaded-runtime experiments (SSP, functional collectives) are
repeated and summarised with the same mean ± 95 % CI the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..utils.validation import require


@dataclass(frozen=True)
class Measurement:
    """Mean, spread and 95 % confidence half-width of a repeated measurement.

    When built through :func:`summarize` the raw samples are kept (they
    are small — 10 to 100 repeats), so tail latency is available through
    :meth:`percentile` and the :attr:`p50`/:attr:`p95`/:attr:`p99`
    properties.  A ``Measurement`` constructed without samples (older
    callers, deserialised records) reports ``nan`` percentiles instead of
    guessing from the mean.
    """

    mean: float
    std: float
    ci95: float
    count: int
    minimum: float
    maximum: float
    samples: tuple = field(default=(), repr=False, compare=False)

    @property
    def lower(self) -> float:
        """Lower edge of the 95 % confidence interval."""
        return self.mean - self.ci95

    @property
    def upper(self) -> float:
        """Upper edge of the 95 % confidence interval."""
        return self.mean + self.ci95

    def percentile(self, q: float) -> float:
        """``q``-th percentile (0–100) of the raw samples, linear-interpolated.

        ``nan`` when the measurement does not carry its samples.
        """
        require(0.0 <= q <= 100.0, f"percentile q must be in [0, 100], got {q!r}")
        if not self.samples:
            return float("nan")
        return float(np.percentile(np.asarray(self.samples, dtype=np.float64), q))

    @property
    def p50(self) -> float:
        """Median of the raw samples (``nan`` without samples)."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th percentile of the raw samples (``nan`` without samples)."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th percentile of the raw samples (``nan`` without samples)."""
        return self.percentile(99.0)

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.ci95:.2g} (n={self.count})"


# Two-sided 97.5 % Student-t quantiles for small sample sizes; larger samples
# fall back to the normal quantile 1.96.  Hard-coding the table keeps the
# hot path free of a scipy dependency at import time.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145,
    15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 100: 1.984,
}


def _t_quantile(dof: int) -> float:
    if dof <= 0:
        return float("nan")
    best = 1.96
    for key in sorted(_T_TABLE):
        if dof <= key:
            return _T_TABLE[key]
        best = _T_TABLE[key]
    return min(best, 1.984) if dof > 100 else best


def confidence_interval_95(samples: Sequence[float]) -> float:
    """Half-width of the 95 % confidence interval of the mean.

    Uses the Student-t quantile for the sample size, as is standard for the
    small repeat counts (10–100) used by the paper and these benchmarks.
    Returns 0 for fewer than two samples.
    """
    samples = np.asarray(list(samples), dtype=np.float64)
    if samples.size < 2:
        return 0.0
    std = float(np.std(samples, ddof=1))
    return _t_quantile(samples.size - 1) * std / math.sqrt(samples.size)


def summarize(samples: Sequence[float]) -> Measurement:
    """Summarise repeated measurements (mean, std, 95 % CI, extrema)."""
    samples = list(float(s) for s in samples)
    require(bool(samples), "summarize needs at least one sample")
    arr = np.asarray(samples)
    return Measurement(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        ci95=confidence_interval_95(samples),
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        samples=tuple(samples),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used to aggregate speed-up ratios across sweep points)."""
    arr = np.asarray(list(values), dtype=np.float64)
    require(arr.size > 0, "geometric_mean needs at least one value")
    require(bool(np.all(arr > 0)), "geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
