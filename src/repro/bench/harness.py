"""Timing-experiment harness over the schedule simulator.

The figures of the paper sweep either the node count (Figures 8–11) or the
message size (Figures 12–13) and plot one line per algorithm.  The harness
expresses exactly that: a :class:`TimingExperiment` is a set of algorithm
names (from :data:`repro.core.registry.REGISTRY`) plus per-line
:class:`~repro.core.policy.ConsistencyPolicy` objects and keyword
arguments, evaluated over a sweep on a machine model, producing a
``{algorithm: [SweepPoint, ...]}`` mapping the report module renders.

Resolution and capability checking go through the same registry metadata
the :class:`~repro.core.api.Communicator` dispatches on, so a benchmark
line and a live collective can never disagree about what an algorithm
supports; :func:`time_auto` additionally exposes the Communicator's
``algorithm="auto"`` tuning-table selection to sweeps.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.policy import ConsistencyPolicy
from ..core.registry import REGISTRY
from ..core.tuning import select_algorithm
from ..simulate.executor import simulate_schedule
from ..simulate.machine import MachineModel
from ..utils.validation import require

#: Version tag of the machine-readable benchmark report format.  Every
#: JSON report this repository emits — ``BENCH_pr3.json`` from
#: :mod:`repro.bench.micro`, the ``--json PATH`` output of the figure
#: benchmarks, the CI perf-smoke artifact — uses this same schema, so the
#: perf trajectory can accumulate and be diffed across PRs.
BENCH_SCHEMA = "repro-bench/v1"


@dataclass(frozen=True)
class SweepPoint:
    """One simulated data point: a parameter value and the resulting time."""

    parameter: int
    seconds: float
    algorithm: str
    num_ranks: int
    payload_bytes: int

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6


@dataclass
class TimingExperiment:
    """A named set of algorithms to compare on one machine model.

    Attributes
    ----------
    name:
        Experiment identifier ("fig08_bcast", …).
    machine:
        Machine preset the schedules are simulated on.
    algorithms:
        Mapping *line label* → registry algorithm name.
    policies:
        Optional per-line :class:`ConsistencyPolicy` (e.g. a 25% data
        threshold); translated to the builder kwargs the algorithm's
        capability metadata admits.
    algorithm_kwargs:
        Extra raw keyword arguments per line label (escape hatch for
        builder knobs that are not consistency policies).
    """

    name: str
    machine: MachineModel
    algorithms: Mapping[str, str]
    policies: Mapping[str, ConsistencyPolicy] = field(default_factory=dict)
    algorithm_kwargs: Mapping[str, dict] = field(default_factory=dict)

    def kwargs_for(self, label: str) -> dict:
        return dict(self.algorithm_kwargs.get(label, {}))

    def policy_for(self, label: str) -> Optional[ConsistencyPolicy]:
        return self.policies.get(label)


def time_algorithm(
    algorithm: str,
    num_ranks: int,
    nbytes: int,
    machine: MachineModel,
    policy: Optional[ConsistencyPolicy] = None,
    **kwargs,
) -> float:
    """Simulated completion time (seconds) of one registered algorithm.

    ``policy`` is validated against the algorithm's capability metadata
    and translated to the schedule-builder kwargs it supports, exactly as
    the Communicator does for live dispatch.
    """
    require(algorithm in REGISTRY, f"algorithm {algorithm!r} is not registered")
    info = REGISTRY.get(algorithm)
    if policy is not None:
        info.check_request(num_ranks, policy)
        kwargs = {**info.schedule_kwargs(policy), **kwargs}
    schedule = info.builder(num_ranks, nbytes, **kwargs)
    result = simulate_schedule(schedule, machine.with_ranks(num_ranks))
    return result.total_time


def time_auto(
    collective: str,
    num_ranks: int,
    nbytes: int,
    machine: MachineModel,
    family: str = "gaspi",
    policy: Optional[ConsistencyPolicy] = None,
) -> tuple[str, float]:
    """Tuning-table selection + simulation in one step.

    Returns the selected registry name and its simulated time — the
    benchmark-side mirror of ``Communicator(..., machine=...)`` with
    ``algorithm="auto"``.
    """
    info = select_algorithm(collective, num_ranks, nbytes, policy=policy, family=family)
    return info.name, time_algorithm(
        info.name, num_ranks, nbytes, machine, policy=policy
    )


def run_node_sweep(
    experiment: TimingExperiment,
    node_counts: Sequence[int],
    payload_bytes: int,
    ranks_per_node: int = 1,
) -> Dict[str, List[SweepPoint]]:
    """Sweep the node count at a fixed payload (Figures 8, 9, 10, 11)."""
    require(len(node_counts) > 0, "need at least one node count")
    series: Dict[str, List[SweepPoint]] = {}
    for label, algorithm in experiment.algorithms.items():
        points: List[SweepPoint] = []
        for nodes in node_counts:
            num_ranks = nodes * ranks_per_node
            machine = experiment.machine.with_ranks(num_ranks, ranks_per_node)
            seconds = time_algorithm(
                algorithm,
                num_ranks,
                payload_bytes,
                machine,
                policy=experiment.policy_for(label),
                **experiment.kwargs_for(label),
            )
            points.append(
                SweepPoint(
                    parameter=nodes,
                    seconds=seconds,
                    algorithm=label,
                    num_ranks=num_ranks,
                    payload_bytes=payload_bytes,
                )
            )
        series[label] = points
    return series


def run_size_sweep(
    experiment: TimingExperiment,
    payload_bytes_list: Sequence[int],
    num_nodes: int,
    ranks_per_node: int = 1,
) -> Dict[str, List[SweepPoint]]:
    """Sweep the payload size at a fixed node count (Figures 12, 13)."""
    require(len(payload_bytes_list) > 0, "need at least one payload size")
    num_ranks = num_nodes * ranks_per_node
    machine = experiment.machine.with_ranks(num_ranks, ranks_per_node)
    series: Dict[str, List[SweepPoint]] = {}
    for label, algorithm in experiment.algorithms.items():
        points: List[SweepPoint] = []
        for nbytes in payload_bytes_list:
            seconds = time_algorithm(
                algorithm,
                num_ranks,
                int(nbytes),
                machine,
                policy=experiment.policy_for(label),
                **experiment.kwargs_for(label),
            )
            points.append(
                SweepPoint(
                    parameter=int(nbytes),
                    seconds=seconds,
                    algorithm=label,
                    num_ranks=num_ranks,
                    payload_bytes=int(nbytes),
                )
            )
        series[label] = points
    return series


# --------------------------------------------------------------------------- #
# machine-readable reports (the perf-regression baseline)
# --------------------------------------------------------------------------- #
@dataclass
class BenchRecord:
    """One measured data point of a benchmark run.

    ``metric`` names what ``value`` is (``"latency_seconds"``,
    ``"wall_seconds"``, ``"simulated_seconds"``); ``mode`` distinguishes
    variants of the same measurement (``"cold"`` vs ``"cached"`` for the
    plan-cache sweeps).  ``extra`` carries free-form companions
    (throughput, iteration counts, sweep rows).
    """

    benchmark: str
    metric: str
    value: float
    collective: str = ""
    algorithm: str = ""
    payload_bytes: int = 0
    mode: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)


def json_report(
    records: Sequence[BenchRecord],
    benchmark: str,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the schema-stable report document for a set of records."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "meta": dict(meta or {}),
        "records": [asdict(r) for r in records],
    }


def write_json_report(
    path: str,
    records: Sequence[BenchRecord],
    benchmark: str,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the report document to ``path`` and return it."""
    document = json_report(records, benchmark, meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return document


def load_json_report(path: str) -> Dict[str, Any]:
    """Load a report, validating the schema tag."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    require(
        document.get("schema") == BENCH_SCHEMA,
        f"{path} is not a {BENCH_SCHEMA} report "
        f"(schema: {document.get('schema')!r})",
    )
    return document


def crossover_point(
    series_a: Sequence[SweepPoint], series_b: Sequence[SweepPoint]
) -> Optional[int]:
    """First sweep parameter at which series A becomes faster than series B.

    Used to locate e.g. the message size at which ``gaspi_allreduce_ring``
    overtakes the MPI variants (Figure 12) or where the GASPI AlltoAll
    overtakes MPI (Figure 13).  Returns ``None`` when A never wins.
    """
    by_param_b = {p.parameter: p.seconds for p in series_b}
    for point in sorted(series_a, key=lambda p: p.parameter):
        other = by_param_b.get(point.parameter)
        if other is not None and point.seconds < other:
            return point.parameter
    return None
