"""Fault experiments: completion time and result error under failures.

Two sweeps quantify what the degraded-mode collectives buy:

* :func:`crash_sweep` — crash count vs. completion time (simulated on a
  machine model: fewer senders, less traffic, *no* waiting for the dead)
  and vs. result error (measured on the threaded substrate: the degraded
  sum simply lacks the crashed contributions, and a correction pass
  restores the exact value when they arrive late);
* :func:`skew_sweep` — arrival-pattern skew vs. completion time, the
  Proficz-style imbalanced-PAP experiment: completion of a strict
  collective is gated by the latest arrival, which is exactly why the
  process-threshold policies pay off;
* :func:`elasticity_sweep` — how long the elastic recovery paths take:
  time to ``shrink()`` a crashed world and time to fold a recovered rank
  back in (rejoin + correction + reinstate), per world size;
* :func:`detection_sweep` — heartbeat period x confirm threshold vs.
  time-to-detect of the phi-accrual detector, checked against the
  degraded path's default detection window.

All produce plain dict rows; render them with
:func:`repro.bench.report.format_kv_table`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.api import Communicator
from ..core.policy import ConsistencyPolicy
from ..faults.injection import FaultPlan, FaultyRuntime, RankCrashedError
from ..faults.recovery import (
    FAULT_SEGMENT_ID,
    send_late_contribution,
    tolerant_allreduce,
    tolerant_allreduce_schedule,
)
from ..faults.scenarios import get_scenario
from ..gaspi.spmd import run_spmd
from ..simulate.executor import simulate_schedule
from ..simulate.machine import MachineModel, skylake_fdr
from ..utils.validation import require
from .report import format_kv_table

#: Detection window used by the threaded error measurements; short, so the
#: sweep stays fast, yet much longer than a threaded exchange needs.
BENCH_DETECT_TIMEOUT = 0.25


def _rank_vector(rank: int, elements: int) -> np.ndarray:
    rng = np.random.default_rng(4242 + rank)
    return rng.standard_normal(elements)


def _relative_error(value: np.ndarray, exact: np.ndarray) -> float:
    scale = float(np.linalg.norm(exact))
    if scale == 0.0:
        return float(np.linalg.norm(value - exact))
    return float(np.linalg.norm(value - exact) / scale)


# --------------------------------------------------------------------------- #
# crash count sweep
# --------------------------------------------------------------------------- #
def measure_crash_errors(
    num_ranks: int = 8,
    crash_counts: Sequence[int] = (0, 1, 2),
    elements: int = 1024,
    threshold: float = 0.5,
    correct: bool = True,
) -> List[Dict]:
    """Threaded degraded-allreduce error per crash count.

    For each crash count ``k`` the last ``k`` ranks crash before
    contributing; the survivors complete at the process threshold and, when
    ``correct`` is set, the crashed ranks recover and re-contribute so the
    correction pass restores the exact result.  Returns one row per crash
    count with the pre- and post-correction relative errors.
    """
    require(num_ranks >= 2, "need at least 2 ranks")
    exact = np.zeros(elements)
    for r in range(num_ranks):
        exact += _rank_vector(r, elements)
    rows: List[Dict] = []
    for crashes in crash_counts:
        require(
            crashes < num_ranks * (1 - threshold) + 1,
            f"{crashes} crashes cannot meet a {threshold} process threshold",
        )
        crashed_ranks = list(range(num_ranks - crashes, num_ranks))
        survivors = num_ranks - crashes
        degraded_done = threading.Barrier(survivors)
        resend = threading.Event()

        def worker(runtime, crashed_ranks=crashed_ranks, degraded_done=degraded_done,
                   resend=resend):
            plan = FaultPlan.crashes(crashed_ranks, at_op=0)
            rt = FaultyRuntime(runtime, plan)
            data = _rank_vector(rt.rank, elements)
            try:
                detail = tolerant_allreduce(
                    rt,
                    data,
                    threshold=threshold,
                    on_failure="complete",
                    detect_timeout=BENCH_DETECT_TIMEOUT,
                )
            except RankCrashedError:
                if correct:
                    resend.wait(30.0)
                    rt.recover()
                    send_late_contribution(rt, data, FAULT_SEGMENT_ID)
                return None
            contributors = detail.contributors
            missing = detail.missing_ranks
            err_degraded = _relative_error(detail.value, exact)
            degraded_done.wait(30.0)
            resend.set()
            if correct and detail.missing_ranks:
                detail.correct(timeout=10.0)
            err_corrected = _relative_error(detail.value, exact)
            detail.close()
            return (contributors, missing, err_degraded, err_corrected)

        results = [r for r in run_spmd(num_ranks, worker, timeout=60.0) if r]
        contributors, missing, err_degraded, err_corrected = results[0]
        rows.append(
            {
                "crashes": int(crashes),
                "contributors": contributors,
                "missing": len(missing),
                "degraded_error": err_degraded,
                "corrected_error": err_corrected if correct else float("nan"),
            }
        )
    return rows


def crash_sweep(
    num_ranks: int = 8,
    crash_counts: Sequence[int] = (0, 1, 2),
    nbytes: int = 64 * 1024,
    machine: Optional[MachineModel] = None,
    threshold: float = 0.5,
    elements: int = 1024,
    measure_errors: bool = True,
) -> Dict:
    """Completion time (simulated) and result error (threaded) vs. crashes.

    The simulated side replays the tolerant flat-exchange schedule with
    the crashed senders removed — degraded completion means *not* waiting
    for the dead, so completion time falls as the crash count rises.  The
    threaded side reports the relative error of the degraded sum and of
    the corrected sum.
    """
    machine = machine or skylake_fdr()
    sim_rows: List[Dict] = []
    for crashes in crash_counts:
        failed = range(num_ranks - int(crashes), num_ranks)
        schedule = tolerant_allreduce_schedule(
            num_ranks, nbytes, threshold=threshold, failed=failed
        )
        result = simulate_schedule(schedule, machine.with_ranks(num_ranks))
        sim_rows.append(
            {
                "crashes": int(crashes),
                "contributors": num_ranks - int(crashes),
                "simulated_us": result.total_time * 1e6,
            }
        )
    rows = sim_rows
    if measure_errors:
        error_rows = measure_crash_errors(
            num_ranks, crash_counts, elements=elements, threshold=threshold
        )
        rows = [
            {**sim, **{k: v for k, v in err.items() if k != "crashes"}}
            for sim, err in zip(sim_rows, error_rows)
        ]
    return {
        "title": (
            f"tolerant allreduce, {num_ranks} ranks, {nbytes} B payload, "
            f"process threshold {threshold}"
        ),
        "rows": rows,
        "table": format_kv_table(rows, title="completion time / error vs. crash count"),
    }


# --------------------------------------------------------------------------- #
# elasticity sweep
# --------------------------------------------------------------------------- #
def elasticity_sweep(
    rank_counts: Sequence[int] = (4, 8),
    elements: int = 2048,
    detect_timeout: float = 0.2,
    converge_timeout: float = 30.0,
) -> Dict:
    """Time-to-shrink and time-to-respawn per world size (threaded).

    Two measured recovery paths per rank count, both starting from a
    degraded allreduce whose last rank crashed:

    * **shrink** — wall time of the survivors' ``Communicator.shrink()``
      (agreement round + quiesce + rebuild), reported as the slowest
      survivor;
    * **respawn** — wall time from degraded completion until the
      survivors folded the recovered rank's late contribution back in
      and reinstated it, again slowest-survivor.  The victim drives
      :func:`repro.elastic.rejoin` in place, gated on the survivors
      completing degraded first — otherwise the late contribution lands
      inside the detection window and there is nothing to measure.
    """
    from ..elastic.respawn import rejoin

    policy = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
    rows: List[Dict] = []
    for num_ranks in rank_counts:
        require(num_ranks >= 2, "need at least 2 ranks")
        victim = num_ranks - 1
        crash_op = max(1, (num_ranks - 1) // 2)

        def shrink_worker(runtime, num_ranks=num_ranks, victim=victim):
            faults = get_scenario("crash_then_shrink").plan(num_ranks)
            comm = Communicator(runtime, faults=faults, detect_timeout=detect_timeout)
            try:
                data = _rank_vector(comm.rank, elements)
                if comm.rank == victim:
                    try:
                        comm.allreduce(data, policy=policy)
                    except RankCrashedError:
                        pass
                    return None
                comm.allreduce(data, policy=policy)
                t0 = time.perf_counter()
                shrunk = comm.shrink()
                elapsed = time.perf_counter() - t0
                shrunk.close()
                return elapsed
            finally:
                comm.close()

        # Every survivor must have *finished* degraded before the victim
        # rejoins, or the late contribution lands inside someone's
        # detection window and the correction pass degenerates to a no-op.
        degraded_done = threading.Barrier(num_ranks - 1)
        resend = threading.Event()

        def respawn_worker(
            runtime, num_ranks=num_ranks, victim=victim, crash_op=crash_op,
            degraded_done=degraded_done, resend=resend,
        ):
            faults = get_scenario("crash_then_respawn").plan(num_ranks)
            comm = Communicator(runtime, faults=faults, detect_timeout=detect_timeout)
            try:
                data = _rank_vector(comm.rank, elements)
                if comm.rank == victim:
                    try:
                        comm.allreduce(data, policy=policy)
                    except RankCrashedError:
                        resend.wait(converge_timeout)
                        rejoin(
                            comm, data,
                            min_peers=(num_ranks - 1) - crash_op,
                            timeout=converge_timeout,
                        )
                    return None
                comm.allreduce(data, policy=policy)
                degraded_done.wait(converge_timeout)
                t0 = time.perf_counter()
                resend.set()
                detail = comm.last_result.detail
                deadline = time.monotonic() + converge_timeout
                while (
                    detail is not None
                    and not detail.complete
                    and time.monotonic() < deadline
                ):
                    detail.correct(timeout=0.5)
                comm.reinstate(victim)
                return time.perf_counter() - t0
            finally:
                comm.close()

        shrink_times = [
            t for t in run_spmd(num_ranks, shrink_worker, timeout=120.0)
            if t is not None
        ]
        respawn_times = [
            t for t in run_spmd(num_ranks, respawn_worker, timeout=120.0)
            if t is not None
        ]
        rows.append(
            {
                "ranks": int(num_ranks),
                "time_to_shrink_s": max(shrink_times),
                "time_to_respawn_s": max(respawn_times),
            }
        )
    return {
        "title": (
            f"elastic recovery, {elements} elements, "
            f"detect timeout {detect_timeout}s (threaded substrate)"
        ),
        "rows": rows,
        "table": format_kv_table(rows, title="time to shrink / respawn vs. ranks"),
    }


# --------------------------------------------------------------------------- #
# detection sweep
# --------------------------------------------------------------------------- #
#: Heartbeats of history the detection_sweep victim sends before going
#: silent — enough to fill the estimator's bootstrap window.
DETECTION_HISTORY_BEATS = 20


def detection_sweep(
    periods: Sequence[float] = (0.005, 0.01, 0.02),
    confirm_phis: Sequence[float] = (3.0, 6.0, 9.0),
    num_ranks: int = 3,
    trials: int = 3,
) -> Dict:
    """Time-to-detect vs. heartbeat period x confirm threshold (threaded).

    Each cell runs detector-only worlds in which the last rank beats
    :data:`DETECTION_HISTORY_BEATS` times and then goes silent for good.
    Every survivor measures the silence the detector needed before the
    *confirm* event — from the victim's last observed beat to the
    transition — and the cell reports the p50/p95 across survivors and
    trials.  The verdict column checks p95 against the degraded path's
    default detection window (:data:`~repro.faults.recovery.
    DEFAULT_DETECT_TIMEOUT`): a confirm that lands inside that window
    means supervised recovery reacts no slower than the collectives'
    own missing-rank declaration.
    """
    from ..faults.recovery import DEFAULT_DETECT_TIMEOUT
    from ..health.detector import HeartbeatDetector

    require(num_ranks >= 2, "need at least 2 ranks")
    victim = num_ranks - 1
    rows: List[Dict] = []
    for period in periods:
        for confirm_phi in confirm_phis:
            samples: List[float] = []
            for _ in range(trials):
                done = threading.Barrier(num_ranks)

                def worker(
                    runtime, done=done, period=period, confirm_phi=confirm_phi,
                ):
                    plan = FaultPlan(
                        crash_at={victim: DETECTION_HISTORY_BEATS}
                    )
                    faulty = FaultyRuntime(runtime, plan)
                    with HeartbeatDetector(
                        faulty,
                        period=period,
                        suspect_phi=min(1.5, confirm_phi / 2.0),
                        confirm_phi=confirm_phi,
                    ) as det:
                        if runtime.rank == victim:
                            done.wait(60.0)
                            return None
                        event = det.wait_for("confirm", victim, timeout=60.0)
                        anchor = det.last_heartbeat(victim)
                        done.wait(60.0)
                        if event is None or anchor is None:
                            return None
                        return event.time - anchor

                samples.extend(
                    t
                    for t in run_spmd(num_ranks, worker, timeout=90.0)
                    if t is not None
                )
            require(samples, "detection sweep produced no confirms")
            p50 = float(np.percentile(samples, 50))
            p95 = float(np.percentile(samples, 95))
            rows.append(
                {
                    "period_ms": period * 1e3,
                    "confirm_phi": float(confirm_phi),
                    "detect_p50_ms": p50 * 1e3,
                    "detect_p95_ms": p95 * 1e3,
                    "within_budget": p95 < DEFAULT_DETECT_TIMEOUT,
                }
            )
    return {
        "title": (
            f"time-to-detect, {num_ranks} ranks, {trials} trial(s), "
            f"budget {DEFAULT_DETECT_TIMEOUT}s (threaded substrate)"
        ),
        "budget_s": DEFAULT_DETECT_TIMEOUT,
        "rows": rows,
        "table": format_kv_table(
            rows, title="time to detect vs. heartbeat period x confirm phi"
        ),
    }


# --------------------------------------------------------------------------- #
# arrival-skew sweep
# --------------------------------------------------------------------------- #
def skew_sweep(
    num_ranks: int = 8,
    skews_us: Iterable[float] = (0.0, 10.0, 100.0, 1000.0),
    nbytes: int = 64 * 1024,
    machine: Optional[MachineModel] = None,
    scenario: str = "sorted_arrival",
) -> Dict:
    """Simulated completion time under a scaled process-arrival pattern.

    The scenario's arrival offsets are normalised and scaled to each sweep
    amplitude, then handed to the executor as ``rank_offsets`` — a strict
    collective cannot complete before the last arrival, so completion time
    grows with the skew, which is the imbalance the paper's thresholds
    exploit.
    """
    machine = machine or skylake_fdr()
    shape = get_scenario(scenario).arrival_offsets(num_ranks, seed=1)
    peak = max(shape) or 1.0
    schedule = tolerant_allreduce_schedule(num_ranks, nbytes)
    rows: List[Dict] = []
    for skew_us in skews_us:
        offsets = [s / peak * skew_us * 1e-6 for s in shape]
        result = simulate_schedule(
            schedule, machine.with_ranks(num_ranks), rank_offsets=offsets
        )
        rows.append(
            {
                "skew_us": float(skew_us),
                "simulated_us": result.total_time * 1e6,
            }
        )
    return {
        "title": (
            f"tolerant allreduce, {num_ranks} ranks, {nbytes} B payload, "
            f"{scenario} arrival pattern"
        ),
        "rows": rows,
        "table": format_kv_table(rows, title=f"completion time vs. {scenario} skew"),
    }
