"""Diff two ``repro-bench/v1`` JSON reports (the perf trajectory tool).

The repository tracks its performance as a sequence of schema-stable JSON
reports (``BENCH_pr3.json``, ``BENCH_pr4.json``, the CI perf-smoke
artifacts).  This module compares two of them record by record::

    PYTHONPATH=src python -m repro.bench.compare BENCH_pr3.json BENCH_pr4.json

Records are matched on their identity tuple ``(benchmark, metric,
collective, algorithm, payload_bytes, mode)``; for every match the ratio
``old / new`` is reported (> 1 means the new report is faster for
latency-like metrics).  Records present in only one report are listed as
added/removed rather than failing — a new PR legitimately adds
benchmarks.  The tool is **report-only**: it always exits 0 on valid
inputs, because CI timing environments are too noisy to gate on (the
perf-smoke job uploads the comparison for humans instead).
"""

from __future__ import annotations

import argparse
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .harness import load_json_report
from .report import format_kv_table

#: Fields identifying "the same measurement" across two reports.
KEY_FIELDS = ("benchmark", "metric", "collective", "algorithm", "payload_bytes", "mode")

#: Tail-latency extras diffed when both records carry them.  These are the
#: percentile keys the micro sweep records; reports from before the
#: percentile schema addition simply lack them and diff as before.
TAIL_FIELDS = ("latency_p50_seconds", "latency_p95_seconds", "latency_p99_seconds")

RecordKey = Tuple[Any, ...]


def record_key(record: Dict[str, Any]) -> RecordKey:
    """Identity tuple of one benchmark record."""
    return tuple(record.get(field, "") for field in KEY_FIELDS)


def index_records(document: Dict[str, Any]) -> Dict[RecordKey, Dict[str, Any]]:
    """Map record identity -> record for one loaded report.

    Duplicate identities (repeated measurements) keep the last occurrence,
    matching how the sweeps append records chronologically.
    """
    return {record_key(r): r for r in document.get("records", [])}


def compare_documents(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, Any]:
    """Structured comparison of two loaded reports.

    Returns ``{"matched": [...], "added": [...], "removed": [...],
    "summary": {...}}`` where every matched row carries ``old_value``,
    ``new_value`` and ``ratio`` (old/new; ``None`` when the new value is
    zero).
    """
    old_index = index_records(old)
    new_index = index_records(new)
    matched: List[Dict[str, Any]] = []
    for key, new_record in new_index.items():
        old_record = old_index.get(key)
        if old_record is None:
            continue
        old_value = float(old_record["value"])
        new_value = float(new_record["value"])
        row = {
            **dict(zip(KEY_FIELDS, key)),
            "old_value": old_value,
            "new_value": new_value,
            "ratio": (old_value / new_value) if new_value else None,
        }
        old_extra = old_record.get("extra") or {}
        new_extra = new_record.get("extra") or {}
        for field in TAIL_FIELDS:
            before = old_extra.get(field)
            after = new_extra.get(field)
            if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
                continue
            before, after = float(before), float(after)
            if math.isnan(before) or math.isnan(after):
                continue
            short = field.replace("latency_", "").replace("_seconds", "")
            row[f"old_{short}"] = before
            row[f"new_{short}"] = after
            row[f"{short}_ratio"] = (before / after) if after else None
        matched.append(row)
    added = [dict(zip(KEY_FIELDS, k)) for k in new_index if k not in old_index]
    removed = [dict(zip(KEY_FIELDS, k)) for k in old_index if k not in new_index]
    ratios = [row["ratio"] for row in matched if row["ratio"] is not None]
    summary = {
        "matched": len(matched),
        "added": len(added),
        "removed": len(removed),
        "min_ratio": min(ratios) if ratios else None,
        "max_ratio": max(ratios) if ratios else None,
        "geomean_ratio": _geomean(ratios),
    }
    return {"matched": matched, "added": added, "removed": removed, "summary": summary}


def _geomean(values: Sequence[float]) -> Optional[float]:
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    product = 1.0
    for value in positive:
        product *= value ** (1.0 / len(positive))
    return product


def compare_reports(old_path: str, new_path: str) -> Dict[str, Any]:
    """Load and compare two report files (schema-validated)."""
    return compare_documents(load_json_report(old_path), load_json_report(new_path))


def format_comparison(result: Dict[str, Any], old_path: str, new_path: str) -> str:
    """Human-readable rendering of a comparison."""
    lines: List[str] = [f"benchmark comparison: {old_path} -> {new_path}", ""]
    if result["matched"]:
        has_tail = any("p95_ratio" in row for row in result["matched"])
        rows = []
        for row in sorted(
            result["matched"],
            key=lambda r: (r["collective"], r["payload_bytes"], r["mode"]),
        ):
            rendered = {
                "collective": row["collective"],
                "algorithm": row["algorithm"],
                "payload_bytes": row["payload_bytes"],
                "mode": row["mode"],
                "old_us": row["old_value"] * 1e6,
                "new_us": row["new_value"] * 1e6,
                "speedup": row["ratio"] if row["ratio"] is not None else float("nan"),
            }
            if has_tail:
                # Tail-latency columns (blank for records diffed against a
                # pre-percentile baseline).
                for short in ("p95", "p99"):
                    have = f"old_{short}" in row
                    rendered[f"old_{short}_us"] = row[f"old_{short}"] * 1e6 if have else ""
                    rendered[f"new_{short}_us"] = row[f"new_{short}"] * 1e6 if have else ""
                    ratio = row.get(f"{short}_ratio")
                    rendered[f"{short}_speedup"] = ratio if ratio is not None else ""
            rows.append(rendered)
        lines.append(format_kv_table(rows, title="matched records (old/new)"))
    for section, title in (
        ("added", "new records (only in the new report)"),
        ("removed", "removed records (only in the old report)"),
    ):
        if result[section]:
            rows = [
                {
                    "benchmark": row["benchmark"],
                    "collective": row["collective"],
                    "algorithm": row["algorithm"],
                    "payload_bytes": row["payload_bytes"],
                    "mode": row["mode"],
                }
                for row in sorted(
                    result[section],
                    key=lambda r: (
                        str(r["benchmark"]),
                        str(r["collective"]),
                        # Numeric payload order, like the matched table
                        # (payload_bytes may be "" for data-free rows).
                        r["payload_bytes"] or 0,
                        str(r["mode"]),
                    ),
                )
            ]
            lines.append("")
            lines.append(format_kv_table(rows, title=title))
    summary = result["summary"]
    lines.append("")
    lines.append(
        f"matched {summary['matched']}, added {summary['added']}, "
        f"removed {summary['removed']}"
    )
    if summary["geomean_ratio"] is not None:
        lines.append(
            f"speedup old/new: geomean {summary['geomean_ratio']:.3f}x, "
            f"min {summary['min_ratio']:.3f}x, max {summary['max_ratio']:.3f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline repro-bench/v1 report")
    parser.add_argument("new", help="new repro-bench/v1 report")
    args = parser.parse_args(argv)
    result = compare_reports(args.old, args.new)
    print(format_comparison(result, args.old, args.new))
    # Report-only by design: timings never fail the build.
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
