"""Microbenchmarks of the collective hot path: cold vs compiled-plan.

This is the perf-regression baseline the repository tracks across PRs: a
latency/throughput sweep over ``collective x algorithm x payload size x
cached-vs-cold`` on the real threaded backend, written as a
machine-readable :data:`~repro.bench.harness.BENCH_SCHEMA` report
(``BENCH_pr3.json`` at the repo root by default).

* **cold** runs on a communicator with ``plan_cache=0``: every call pays
  the full per-call setup — topology construction, workspace segment
  registration with its two barriers, schedule state, teardown.
* **cached** runs on a communicator with the default plan cache: the
  first (warm-up) call compiles the :class:`~repro.core.plan.CollectivePlan`,
  every measured call is pure data movement over the pooled workspace.

Run it from the repository root::

    PYTHONPATH=src python -m repro.bench.micro              # full sweep
    PYTHONPATH=src python -m repro.bench.micro --quick      # CI smoke
    PYTHONPATH=src python -m repro.bench.micro --out my.json

The sweep *measures and records* the speedup; it never asserts on
timings (CI runners are noisy), so the perf-smoke job fails only on
errors.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import Communicator
from ..gaspi.spmd import run_spmd
from .harness import BenchRecord, write_json_report
from .report import format_kv_table

#: Default sweep: (collective, short algorithm alias) pairs.  Covers the
#: three acceptance collectives, with both allreduce algorithms so the
#: latency- and bandwidth-optimal paths are tracked.
DEFAULT_CASES: Tuple[Tuple[str, str], ...] = (
    ("bcast", "bst"),
    ("reduce", "bst"),
    ("allreduce", "ring"),
    ("allreduce", "hypercube"),
)

#: Default payload sizes (bytes): small through the large-message regime
#: where the pipelined chunked data path takes over (>= 256 KiB).
DEFAULT_SIZES: Tuple[int, ...] = (1_024, 16_384, 262_144, 1_048_576, 4_194_304)

#: (collective, monolithic alias, pipelined alias) pairs of the
#: pipelined-vs-monolithic comparison mode.
PIPELINE_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    ("bcast", "bst", "bst_pipelined"),
    ("reduce", "bst", "bst_pipelined"),
    ("allreduce", "ring", "ring_pipelined"),
)

#: Payload sizes of the pipelined comparison (the large-message regime).
PIPELINE_SIZES: Tuple[int, ...] = (262_144, 1_048_576, 4_194_304)

DEFAULT_OUT = "BENCH_pr4.json"


def _collective_caller(comm: Communicator, collective: str, algorithm: str,
                       sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Closure performing one call of the requested collective."""
    if collective == "bcast":
        return lambda: comm.bcast(sendbuf, root=0, algorithm=algorithm)
    if collective == "reduce":
        return lambda: comm.reduce(sendbuf, recvbuf=recvbuf, root=0, algorithm=algorithm)
    if collective == "allreduce":
        return lambda: comm.allreduce(sendbuf, recvbuf=recvbuf, algorithm=algorithm)
    raise ValueError(f"unsupported micro collective {collective!r}")


def time_threaded_collective(
    collective: str,
    algorithm: str,
    nbytes: int,
    *,
    ranks: int = 4,
    iterations: int = 20,
    warmup: int = 2,
    plan_cache: Optional[int] = None,
    timeout: float = 120.0,
) -> Dict[str, float]:
    """Per-call latency of one collective on the threaded backend.

    Every rank runs ``warmup`` unmeasured calls (on the cached variant the
    first of them compiles the plan), synchronises, then times a tight
    loop of ``iterations`` calls.  The reported latency is the slowest
    rank's mean — the completion time of the collective, not the fastest
    returner's.  Returns latency plus the resolved registry name.
    """
    kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}

    def worker(runtime):
        comm = Communicator(runtime, **kwargs)
        elements = max(1, nbytes // 8)
        sendbuf = np.full(elements, float(runtime.rank) + 1.0, dtype=np.float64)
        recvbuf = np.empty_like(sendbuf)
        call = _collective_caller(comm, collective, algorithm, sendbuf, recvbuf)
        for _ in range(max(warmup, 1)):
            call()
        resolved = comm.last_result.algorithm
        runtime.barrier()
        start = time.perf_counter()
        for _ in range(iterations):
            call()
        elapsed = time.perf_counter() - start
        runtime.barrier()
        stats = comm.plan_cache_stats()
        comm.close()
        return elapsed / iterations, resolved, stats.hits

    results = run_spmd(ranks, worker, timeout=timeout)
    latency = max(r[0] for r in results)
    return {
        "latency_seconds": latency,
        "algorithm": results[0][1],
        "plan_hits": results[0][2],
    }


def run_micro_sweep(
    cases: Sequence[Tuple[str, str]] = DEFAULT_CASES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    ranks: int = 4,
    iterations: int = 20,
    warmup: int = 2,
) -> Tuple[List[BenchRecord], List[Dict[str, object]]]:
    """The full cold-vs-cached sweep; returns (records, speedup summary)."""
    records: List[BenchRecord] = []
    summary: List[Dict[str, object]] = []
    for collective, algorithm in cases:
        for nbytes in sizes:
            timings: Dict[str, Dict[str, float]] = {}
            for mode, plan_cache in (("cold", 0), ("cached", None)):
                measured = time_threaded_collective(
                    collective,
                    algorithm,
                    nbytes,
                    ranks=ranks,
                    iterations=iterations,
                    warmup=warmup,
                    plan_cache=plan_cache,
                )
                timings[mode] = measured
                latency = measured["latency_seconds"]
                records.append(
                    BenchRecord(
                        benchmark="micro",
                        metric="latency_seconds",
                        value=latency,
                        collective=collective,
                        algorithm=str(measured["algorithm"]),
                        payload_bytes=int(nbytes),
                        mode=mode,
                        extra={
                            "ranks": ranks,
                            "iterations": iterations,
                            "throughput_bytes_per_second": (
                                nbytes / latency if latency > 0 else 0.0
                            ),
                            "plan_cache_hits": measured["plan_hits"],
                        },
                    )
                )
            cold = timings["cold"]["latency_seconds"]
            cached = timings["cached"]["latency_seconds"]
            summary.append(
                {
                    "collective": collective,
                    "algorithm": str(timings["cached"]["algorithm"]),
                    "payload_bytes": int(nbytes),
                    "cold_us": cold * 1e6,
                    "cached_us": cached * 1e6,
                    "speedup": cold / cached if cached > 0 else float("inf"),
                }
            )
    return records, summary


def run_pipelined_comparison(
    sizes: Sequence[int] = PIPELINE_SIZES,
    pairs: Sequence[Tuple[str, str, str]] = PIPELINE_PAIRS,
    *,
    ranks: int = 4,
    iterations: int = 20,
    warmup: int = 3,
) -> Tuple[List[BenchRecord], List[Dict[str, object]]]:
    """Cached-path pipelined vs monolithic comparison (both plan-cached).

    This is the acceptance measurement of the chunked data path: at every
    large payload, the same collective runs through the monolithic plan
    (the PR 3 baseline implementation) and through the pipelined plan,
    back to back on the same machine, and the speedup is recorded.
    """
    records: List[BenchRecord] = []
    rows: List[Dict[str, object]] = []
    for collective, mono, pipe in pairs:
        for nbytes in sizes:
            measured: Dict[str, Dict[str, float]] = {}
            for mode, algorithm in (("monolithic", mono), ("pipelined", pipe)):
                result = time_threaded_collective(
                    collective,
                    algorithm,
                    nbytes,
                    ranks=ranks,
                    iterations=iterations,
                    warmup=warmup,
                )
                measured[mode] = result
                latency = result["latency_seconds"]
                records.append(
                    BenchRecord(
                        benchmark="micro-pipelined",
                        metric="latency_seconds",
                        value=latency,
                        collective=collective,
                        algorithm=str(result["algorithm"]),
                        payload_bytes=int(nbytes),
                        mode=mode,
                        extra={
                            "ranks": ranks,
                            "iterations": iterations,
                            "throughput_bytes_per_second": (
                                nbytes / latency if latency > 0 else 0.0
                            ),
                        },
                    )
                )
            mono_s = measured["monolithic"]["latency_seconds"]
            pipe_s = measured["pipelined"]["latency_seconds"]
            rows.append(
                {
                    "collective": collective,
                    "payload_bytes": int(nbytes),
                    "monolithic_us": mono_s * 1e6,
                    "pipelined_us": pipe_s * 1e6,
                    "speedup": mono_s / pipe_s if pipe_s > 0 else float("inf"),
                }
            )
    return records, rows


def run_overlap_measurement(
    *, quick: bool = False
) -> Tuple[List[BenchRecord], Dict[str, object]]:
    """The ML overlap demonstration: iallreduce + compute vs blocking.

    Wraps :func:`repro.ml.sgd.run_overlap_demo` (bucketed gradient
    exchange with rotating stragglers) into benchmark records.
    """
    from ..ml.sgd import run_overlap_demo

    demo = run_overlap_demo(iterations=4 if quick else 10)
    rows = {
        "blocking_seconds": demo.blocking_seconds,
        "overlapped_seconds": demo.overlapped_seconds,
        "speedup": demo.speedup,
        "results_match": demo.results_match,
    }
    records = [
        BenchRecord(
            benchmark="micro-overlap",
            metric="wall_seconds",
            value=value,
            collective="allreduce",
            algorithm="gaspi_allreduce_ring_pipelined",
            mode=mode,
            extra={"results_match": demo.results_match},
        )
        for mode, value in (
            ("blocking", demo.blocking_seconds),
            ("overlapped", demo.overlapped_seconds),
        )
    ]
    return records, rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ranks", type=int, default=4,
                        help="threaded world size (power of two for hypercube)")
    parser.add_argument("--sizes", type=str, default=None,
                        help="comma-separated payload sizes in bytes")
    parser.add_argument("--iterations", type=int, default=20,
                        help="measured calls per configuration")
    parser.add_argument("--warmup", type=int, default=2,
                        help="unmeasured calls before timing (compiles the plan)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep for CI smoke runs")
    parser.add_argument("--skip-overlap", action="store_true",
                        help="skip the ML overlap measurement")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help=f"JSON report path (default: {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    sizes: Sequence[int]
    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    elif args.quick:
        sizes = (1_024, 16_384, 262_144)
    else:
        sizes = DEFAULT_SIZES
    iterations = 5 if args.quick and args.iterations == 20 else args.iterations
    pipeline_sizes: Sequence[int] = (
        (262_144,) if args.quick else PIPELINE_SIZES
    )

    records, summary = run_micro_sweep(
        sizes=sizes, ranks=args.ranks, iterations=iterations, warmup=args.warmup
    )
    pipe_records, pipe_rows = run_pipelined_comparison(
        sizes=pipeline_sizes, ranks=args.ranks, iterations=iterations,
        warmup=args.warmup,
    )
    records.extend(pipe_records)
    overlap_rows: Dict[str, object] = {}
    if not args.skip_overlap:
        overlap_records, overlap_rows = run_overlap_measurement(quick=args.quick)
        records.extend(overlap_records)
    min_speedup = min(row["speedup"] for row in summary)
    small = [r["speedup"] for r in summary if r["payload_bytes"] == min(sizes)]
    large_rows = [r for r in pipe_rows if int(r["payload_bytes"]) >= 262_144]
    write_json_report(
        args.out,
        records,
        benchmark="micro",
        meta={
            "ranks": args.ranks,
            "iterations": iterations,
            "warmup": args.warmup,
            "sizes": list(sizes),
            "quick": bool(args.quick),
            "speedup_summary": summary,
            "min_speedup": min_speedup,
            "small_payload_speedups": small,
            "pipelined_summary": pipe_rows,
            "pipelined_speedups_large": [r["speedup"] for r in large_rows],
            "overlap_demo": overlap_rows,
            "baseline_report": "BENCH_pr3.json",
        },
    )
    print(format_kv_table(summary, title="plan-cache speedup (cold / cached)"))
    print(format_kv_table(pipe_rows,
                          title="pipelined vs monolithic (both cached)"))
    if overlap_rows:
        print(f"\noverlap demo: blocking {overlap_rows['blocking_seconds']*1e3:.2f} ms"
              f" vs overlapped {overlap_rows['overlapped_seconds']*1e3:.2f} ms"
              f" ({overlap_rows['speedup']:.2f}x, bit-identical="
              f"{overlap_rows['results_match']})")
    print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
