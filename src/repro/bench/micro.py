"""Microbenchmarks of the collective hot path: cold vs compiled-plan,
threaded vs shared-memory backend.

This is the perf-regression baseline the repository tracks across PRs: a
latency/throughput sweep over ``collective x algorithm x payload size x
cached-vs-cold`` on a real rank world, written as a machine-readable
:data:`~repro.bench.harness.BENCH_SCHEMA` report (``BENCH_pr5.json`` at
the repo root by default).

* **cold** runs on a communicator with ``plan_cache=0``: every call pays
  the full per-call setup — topology construction, workspace segment
  registration with its two barriers, schedule state, teardown.
* **cached** runs on a communicator with the default plan cache: the
  first (warm-up) call compiles the :class:`~repro.core.plan.CollectivePlan`,
  every measured call is pure data movement over the pooled workspace.

The ``--backend`` axis selects the rank-world substrate: ``threaded``
(thread-per-rank, GIL-shared) or ``shm`` (process-per-rank over POSIX
shared memory, :class:`~repro.gaspi.shm.ShmRuntime`) — or ``both``,
which runs the sweep twice and records the threaded-vs-shm comparison in
the report's meta.  Shm records carry an ``@shm`` mode suffix so the
two backends never collide on a record identity, and old threaded-only
baselines keep matching the threaded rows.

Timing is taken *per rank*: every rank times its own tight loop between
two world barriers and the reported latency is the slowest rank's mean —
the completion time of the collective, not the fastest returner's.  The
per-rank spread (min/mean across ranks) is recorded alongside, because
the two backends schedule ranks very differently (GIL interleaving vs
OS processes) and a single aggregate would hide that.  ``--warmup``
controls the unmeasured calls that precede the timed loop (the first of
them compiles the plan on the cached variant).

Run it from the repository root::

    PYTHONPATH=src python -m repro.bench.micro                   # threaded
    PYTHONPATH=src python -m repro.bench.micro --backend shm
    PYTHONPATH=src python -m repro.bench.micro --backend both    # baseline
    PYTHONPATH=src python -m repro.bench.micro --quick           # CI smoke

The sweep *measures and records* the speedup; it never asserts on
timings (CI runners are noisy), so the perf-smoke job fails only on
errors.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import Communicator
from ..gaspi.launch import BACKENDS, run_backend
from .harness import BenchRecord, write_json_report
from .report import format_kv_table
from .stats import summarize

#: Default sweep: (collective, short algorithm alias) pairs.  Covers the
#: three acceptance collectives, with both allreduce algorithms so the
#: latency- and bandwidth-optimal paths are tracked.
DEFAULT_CASES: Tuple[Tuple[str, str], ...] = (
    ("bcast", "bst"),
    ("reduce", "bst"),
    ("allreduce", "ring"),
    ("allreduce", "hypercube"),
)

#: Default payload sizes (bytes): small through the large-message regime
#: where the pipelined chunked data path takes over (>= 256 KiB).
DEFAULT_SIZES: Tuple[int, ...] = (1_024, 16_384, 262_144, 1_048_576, 4_194_304)

#: (collective, monolithic alias, pipelined alias) pairs of the
#: pipelined-vs-monolithic comparison mode.
PIPELINE_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    ("bcast", "bst", "bst_pipelined"),
    ("reduce", "bst", "bst_pipelined"),
    ("allreduce", "ring", "ring_pipelined"),
)

#: Payload sizes of the pipelined comparison (the large-message regime).
PIPELINE_SIZES: Tuple[int, ...] = (262_144, 1_048_576, 4_194_304)

DEFAULT_OUT = "BENCH_pr5.json"


def _record_mode(mode: str, backend: str) -> str:
    """Record-identity mode: shm rows are suffixed so the two backends
    never collide on ``(benchmark, metric, collective, algorithm,
    payload_bytes, mode)`` and old threaded baselines keep matching."""
    return mode if backend == "threaded" else f"{mode}@{backend}"


def _collective_caller(comm: Communicator, collective: str, algorithm: str,
                       sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Closure performing one call of the requested collective."""
    if collective == "bcast":
        return lambda: comm.bcast(sendbuf, root=0, algorithm=algorithm)
    if collective == "reduce":
        return lambda: comm.reduce(sendbuf, recvbuf=recvbuf, root=0, algorithm=algorithm)
    if collective == "allreduce":
        return lambda: comm.allreduce(sendbuf, recvbuf=recvbuf, algorithm=algorithm)
    raise ValueError(f"unsupported micro collective {collective!r}")


def time_collective(
    collective: str,
    algorithm: str,
    nbytes: int,
    *,
    backend: str = "threaded",
    ranks: int = 4,
    iterations: int = 20,
    warmup: int = 2,
    plan_cache: Optional[int] = None,
    timeout: float = 120.0,
) -> Dict[str, float]:
    """Per-call latency of one collective on one backend.

    Every rank runs ``warmup`` unmeasured calls (on the cached variant the
    first of them compiles the plan), synchronises on a world barrier,
    then times its own tight loop of ``iterations`` calls.  The reported
    ``latency_seconds`` is the slowest rank's mean — the completion time
    of the collective — with the cross-rank min and mean alongside.
    """
    kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}

    def worker(runtime):
        comm = Communicator(runtime, **kwargs)
        elements = max(1, nbytes // 8)
        sendbuf = np.full(elements, float(runtime.rank) + 1.0, dtype=np.float64)
        recvbuf = np.empty_like(sendbuf)
        call = _collective_caller(comm, collective, algorithm, sendbuf, recvbuf)
        for _ in range(max(warmup, 1)):
            call()
        resolved = comm.last_result.algorithm
        runtime.barrier()
        # Per-iteration samples (two clock reads per call, noise floor well
        # below the collective latency) so tail percentiles are reportable.
        samples = []
        for _ in range(iterations):
            t0 = time.perf_counter()
            call()
            samples.append(time.perf_counter() - t0)
        runtime.barrier()
        stats = comm.plan_cache_stats()
        comm.close()
        return sum(samples) / iterations, resolved, stats.hits, tuple(samples)

    results = run_backend(ranks, worker, backend=backend, timeout=timeout)
    per_rank = [r[0] for r in results]
    # Tail percentiles come from the slowest rank's own samples — the same
    # rank whose mean is reported as the completion latency.
    slowest = summarize(results[per_rank.index(max(per_rank))][3])
    return {
        "latency_seconds": max(per_rank),
        "latency_rank_min_seconds": min(per_rank),
        "latency_rank_mean_seconds": sum(per_rank) / len(per_rank),
        "latency_p50_seconds": slowest.p50,
        "latency_p95_seconds": slowest.p95,
        "latency_p99_seconds": slowest.p99,
        "algorithm": results[0][1],
        "plan_hits": results[0][2],
    }


def time_threaded_collective(
    collective: str,
    algorithm: str,
    nbytes: int,
    **kwargs,
) -> Dict[str, float]:
    """Backward-compatible alias: :func:`time_collective` on threads."""
    return time_collective(collective, algorithm, nbytes, backend="threaded", **kwargs)


def _latency_record(
    benchmark: str,
    collective: str,
    nbytes: int,
    mode: str,
    backend: str,
    measured: Dict[str, float],
    ranks: int,
    iterations: int,
) -> BenchRecord:
    latency = measured["latency_seconds"]
    return BenchRecord(
        benchmark=benchmark,
        metric="latency_seconds",
        value=latency,
        collective=collective,
        algorithm=str(measured["algorithm"]),
        payload_bytes=int(nbytes),
        mode=_record_mode(mode, backend),
        extra={
            "backend": backend,
            "ranks": ranks,
            "iterations": iterations,
            "throughput_bytes_per_second": (
                nbytes / latency if latency > 0 else 0.0
            ),
            "latency_rank_min_seconds": measured["latency_rank_min_seconds"],
            "latency_rank_mean_seconds": measured["latency_rank_mean_seconds"],
            "latency_p50_seconds": measured.get("latency_p50_seconds"),
            "latency_p95_seconds": measured.get("latency_p95_seconds"),
            "latency_p99_seconds": measured.get("latency_p99_seconds"),
            "plan_cache_hits": measured.get("plan_hits", 0),
        },
    )


def run_micro_sweep(
    cases: Sequence[Tuple[str, str]] = DEFAULT_CASES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    backend: str = "threaded",
    ranks: int = 4,
    iterations: int = 20,
    warmup: int = 2,
) -> Tuple[List[BenchRecord], List[Dict[str, object]]]:
    """The full cold-vs-cached sweep; returns (records, speedup summary)."""
    records: List[BenchRecord] = []
    summary: List[Dict[str, object]] = []
    for collective, algorithm in cases:
        for nbytes in sizes:
            timings: Dict[str, Dict[str, float]] = {}
            for mode, plan_cache in (("cold", 0), ("cached", None)):
                measured = time_collective(
                    collective,
                    algorithm,
                    nbytes,
                    backend=backend,
                    ranks=ranks,
                    iterations=iterations,
                    warmup=warmup,
                    plan_cache=plan_cache,
                )
                timings[mode] = measured
                records.append(
                    _latency_record(
                        "micro", collective, nbytes, mode, backend,
                        measured, ranks, iterations,
                    )
                )
            cold = timings["cold"]["latency_seconds"]
            cached = timings["cached"]["latency_seconds"]
            summary.append(
                {
                    "backend": backend,
                    "collective": collective,
                    "algorithm": str(timings["cached"]["algorithm"]),
                    "payload_bytes": int(nbytes),
                    "cold_us": cold * 1e6,
                    "cached_us": cached * 1e6,
                    "speedup": cold / cached if cached > 0 else float("inf"),
                }
            )
    return records, summary


def run_pipelined_comparison(
    sizes: Sequence[int] = PIPELINE_SIZES,
    pairs: Sequence[Tuple[str, str, str]] = PIPELINE_PAIRS,
    *,
    backend: str = "threaded",
    ranks: int = 4,
    iterations: int = 20,
    warmup: int = 3,
) -> Tuple[List[BenchRecord], List[Dict[str, object]]]:
    """Cached-path pipelined vs monolithic comparison (both plan-cached).

    This is the acceptance measurement of the chunked data path: at every
    large payload, the same collective runs through the monolithic plan
    (the PR 3 baseline implementation) and through the pipelined plan,
    back to back on the same machine, and the speedup is recorded.
    """
    records: List[BenchRecord] = []
    rows: List[Dict[str, object]] = []
    for collective, mono, pipe in pairs:
        for nbytes in sizes:
            measured: Dict[str, Dict[str, float]] = {}
            for mode, algorithm in (("monolithic", mono), ("pipelined", pipe)):
                result = time_collective(
                    collective,
                    algorithm,
                    nbytes,
                    backend=backend,
                    ranks=ranks,
                    iterations=iterations,
                    warmup=warmup,
                )
                measured[mode] = result
                records.append(
                    _latency_record(
                        "micro-pipelined", collective, nbytes, mode, backend,
                        result, ranks, iterations,
                    )
                )
            mono_s = measured["monolithic"]["latency_seconds"]
            pipe_s = measured["pipelined"]["latency_seconds"]
            rows.append(
                {
                    "backend": backend,
                    "collective": collective,
                    "payload_bytes": int(nbytes),
                    "monolithic_us": mono_s * 1e6,
                    "pipelined_us": pipe_s * 1e6,
                    "speedup": mono_s / pipe_s if pipe_s > 0 else float("inf"),
                }
            )
    return records, rows


def backend_comparison(
    summaries: Dict[str, List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Threaded-vs-shm rows from per-backend cached sweep summaries.

    ``shm_speedup > 1`` means the process world completed the collective
    faster than the GIL-shared thread world for that payload.
    """
    threaded = {
        (row["collective"], row["algorithm"], row["payload_bytes"]): row
        for row in summaries.get("threaded", [])
    }
    rows: List[Dict[str, object]] = []
    for row in summaries.get("shm", []):
        key = (row["collective"], row["algorithm"], row["payload_bytes"])
        base = threaded.get(key)
        if base is None:
            continue
        threaded_us = float(base["cached_us"])
        shm_us = float(row["cached_us"])
        rows.append(
            {
                "collective": row["collective"],
                "algorithm": row["algorithm"],
                "payload_bytes": row["payload_bytes"],
                "threaded_us": threaded_us,
                "shm_us": shm_us,
                "shm_speedup": threaded_us / shm_us if shm_us > 0 else float("inf"),
            }
        )
    return rows


def run_overlap_measurement(
    *, quick: bool = False
) -> Tuple[List[BenchRecord], Dict[str, object]]:
    """The ML overlap demonstration: iallreduce + compute vs blocking.

    Wraps :func:`repro.ml.sgd.run_overlap_demo` (bucketed gradient
    exchange with rotating stragglers) into benchmark records.
    """
    from ..ml.sgd import run_overlap_demo

    demo = run_overlap_demo(iterations=4 if quick else 10)
    rows = {
        "blocking_seconds": demo.blocking_seconds,
        "overlapped_seconds": demo.overlapped_seconds,
        "speedup": demo.speedup,
        "results_match": demo.results_match,
    }
    records = [
        BenchRecord(
            benchmark="micro-overlap",
            metric="wall_seconds",
            value=value,
            collective="allreduce",
            algorithm="gaspi_allreduce_ring_pipelined",
            mode=mode,
            extra={"results_match": demo.results_match},
        )
        for mode, value in (
            ("blocking", demo.blocking_seconds),
            ("overlapped", demo.overlapped_seconds),
        )
    ]
    return records, rows


def run_trace_measurement(
    collective: str = "allreduce",
    algorithm: str = "gaspi_allreduce_ring",
    nbytes: int = 16_384,
    ranks: int = 8,
    iterations: int = 5,
) -> Dict[str, object]:
    """One micro cell under :class:`~repro.analysis.TracingRuntime`.

    Runs the cell twice on the threaded backend — bare, then with every
    rank's runtime wrapped in a tracing recorder — replays the recorded
    execution through the static checkers (no findings expected on a
    clean run), and reports the tracing overhead.  The overhead is real:
    every post/consume allocates an event and ``notify_drain`` falls back
    to the per-slot base-class loop so each reset is observed, which is
    why tracing is off by default and lives behind ``--trace``.
    """
    from ..analysis import TraceSink, analyze

    def timed(sink):
        def worker(runtime):
            rt = runtime.traced(sink) if sink is not None else runtime
            comm = Communicator(rt)
            elements = max(1, nbytes // 8)
            sendbuf = np.full(elements, float(rt.rank) + 1.0, dtype=np.float64)
            recvbuf = np.empty_like(sendbuf)
            call = _collective_caller(comm, collective, algorithm, sendbuf, recvbuf)
            call()  # warmup: compiles the plan
            rt.barrier()
            start = time.perf_counter()
            for _ in range(iterations):
                call()
            elapsed = time.perf_counter() - start
            rt.barrier()
            comm.close()
            return elapsed / iterations

        per_rank = run_backend(ranks, worker, backend="threaded")
        return max(per_rank)

    base_latency = timed(None)
    sink = TraceSink(ranks)
    traced_latency = timed(sink)
    trace = sink.trace(name=f"{algorithm}[traced, ranks={ranks}, nbytes={nbytes}]")
    findings = analyze(trace)
    return {
        "collective": collective,
        "algorithm": algorithm,
        "ranks": ranks,
        "payload_bytes": nbytes,
        "events": trace.total_events(),
        "findings": [finding.describe() for finding in findings],
        "base_seconds": base_latency,
        "traced_seconds": traced_latency,
        "overhead": traced_latency / base_latency if base_latency else float("inf"),
    }


def run_telemetry_measurement(
    collective: str = "allreduce",
    algorithm: str = "ring_pipelined",
    nbytes: int = 1_048_576,
    ranks: int = 8,
    iterations: int = 5,
    backend: str = "threaded",
) -> Dict[str, object]:
    """One micro cell bare vs telemetry-enabled, plus the merged snapshot.

    The cell runs twice on the same backend — without a registry, then
    with every rank feeding a :class:`~repro.telemetry.Telemetry` — and
    reports the enabled-mode overhead the same way ``--trace`` reports
    tracing overhead.  The per-rank result checksums of both runs are
    compared (telemetry must never change the numerics) and the merged,
    schema-validated snapshot is returned for embedding in the report's
    meta.
    """
    from ..telemetry import Telemetry, merge_snapshots, validate_snapshot

    def timed(enabled: bool):
        def worker(runtime):
            tel = Telemetry(rank=runtime.rank) if enabled else None
            comm = Communicator(runtime, telemetry=tel)
            elements = max(1, nbytes // 8)
            sendbuf = np.full(elements, float(runtime.rank) + 1.0, dtype=np.float64)
            recvbuf = np.empty_like(sendbuf)
            call = _collective_caller(comm, collective, algorithm, sendbuf, recvbuf)
            call()  # warmup: compiles the plan
            runtime.barrier()
            start = time.perf_counter()
            for _ in range(iterations):
                call()
            elapsed = time.perf_counter() - start
            runtime.barrier()
            checksum = float(np.sum(recvbuf if collective != "bcast" else sendbuf))
            comm.close()
            snap = tel.snapshot() if tel is not None else None
            return elapsed / iterations, checksum, snap

        results = run_backend(ranks, worker, backend=backend)
        latency = max(r[0] for r in results)
        checksums = [r[1] for r in results]
        snapshots = [r[2] for r in results]
        return latency, checksums, snapshots

    base_latency, base_checksums, _ = timed(False)
    tel_latency, tel_checksums, snapshots = timed(True)
    merged = merge_snapshots(snapshots)
    validate_snapshot(merged)
    return {
        "collective": collective,
        "algorithm": algorithm,
        "backend": backend,
        "ranks": ranks,
        "payload_bytes": nbytes,
        "results_match": base_checksums == tel_checksums,
        "base_seconds": base_latency,
        "telemetry_seconds": tel_latency,
        "overhead": tel_latency / base_latency if base_latency else float("inf"),
        "snapshot": merged,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=BACKENDS + ("both",),
                        default="threaded",
                        help="rank-world substrate to sweep (default: threaded)")
    parser.add_argument("--ranks", type=int, default=4,
                        help="world size (power of two for hypercube)")
    parser.add_argument("--sizes", type=str, default=None,
                        help="comma-separated payload sizes in bytes")
    parser.add_argument("--iterations", type=int, default=20,
                        help="measured calls per configuration")
    parser.add_argument("--warmup", type=int, default=2,
                        help="unmeasured calls before timing (compiles the plan)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep for CI smoke runs")
    parser.add_argument("--skip-overlap", action="store_true",
                        help="skip the ML overlap measurement")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help=f"JSON report path (default: {DEFAULT_OUT})")
    parser.add_argument("--trace", action="store_true",
                        help="run one cell under TracingRuntime, replay it "
                             "through the static checkers and report the "
                             "tracing overhead (skips the sweep)")
    parser.add_argument("--telemetry", action="store_true",
                        help="additionally run one cell bare vs "
                             "telemetry-enabled, report the overhead and "
                             "embed the merged snapshot in the report meta")
    parser.add_argument("--elasticity", action="store_true",
                        help="additionally measure time-to-shrink and "
                             "time-to-respawn per world size and embed the "
                             "rows in the report meta")
    parser.add_argument("--detection", action="store_true",
                        help="additionally sweep heartbeat period x confirm "
                             "threshold vs. time-to-detect and embed the "
                             "rows in the report meta (fails the run if p95 "
                             "exceeds the degraded detection window)")
    args = parser.parse_args(argv)

    if args.trace:
        row = run_trace_measurement(ranks=args.ranks)
        print(format_kv_table(
            [{k: v for k, v in row.items() if k != "findings"}],
            title="traced cell (threaded backend)",
        ))
        if row["findings"]:
            print("\nfindings:")
            for finding in row["findings"]:
                print(f"  {finding}")
            return 1
        print("\ntrace replay clean: no findings")
        return 0

    sizes: Sequence[int]
    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    elif args.quick:
        sizes = (1_024, 16_384, 262_144)
    else:
        sizes = DEFAULT_SIZES
    iterations = 5 if args.quick and args.iterations == 20 else args.iterations
    pipeline_sizes: Sequence[int] = (
        (262_144,) if args.quick else PIPELINE_SIZES
    )
    backends = ("threaded", "shm") if args.backend == "both" else (args.backend,)

    records: List[BenchRecord] = []
    summaries: Dict[str, List[Dict[str, object]]] = {}
    pipe_summaries: Dict[str, List[Dict[str, object]]] = {}
    for backend in backends:
        backend_records, summary = run_micro_sweep(
            sizes=sizes, backend=backend, ranks=args.ranks,
            iterations=iterations, warmup=args.warmup,
        )
        records.extend(backend_records)
        summaries[backend] = summary
        pipe_records, pipe_rows = run_pipelined_comparison(
            sizes=pipeline_sizes, backend=backend, ranks=args.ranks,
            iterations=iterations, warmup=args.warmup,
        )
        records.extend(pipe_records)
        pipe_summaries[backend] = pipe_rows

    overlap_rows: Dict[str, object] = {}
    if not args.skip_overlap and "threaded" in backends:
        overlap_records, overlap_rows = run_overlap_measurement(quick=args.quick)
        records.extend(overlap_records)

    telemetry_row: Dict[str, object] = {}
    if args.telemetry:
        telemetry_row = run_telemetry_measurement(
            ranks=args.ranks,
            nbytes=min(sizes) if args.quick else 1_048_576,
            iterations=iterations,
            backend=backends[0],
        )

    elasticity: Dict[str, object] = {}
    if args.elasticity:
        from .faults import elasticity_sweep

        elasticity = elasticity_sweep(
            rank_counts=(4,) if args.quick else (4, 8),
            elements=512 if args.quick else 2048,
        )

    detection: Dict[str, object] = {}
    if args.detection:
        from .faults import detection_sweep

        detection = detection_sweep(
            periods=(0.01, 0.02) if args.quick else (0.005, 0.01, 0.02),
            confirm_phis=(3.0, 6.0) if args.quick else (3.0, 6.0, 9.0),
            trials=2 if args.quick else 3,
        )

    primary = summaries[backends[0]]
    min_speedup = min(row["speedup"] for row in primary)
    small = [r["speedup"] for r in primary if r["payload_bytes"] == min(sizes)]
    crossover = backend_comparison(summaries)
    all_pipe_rows = [row for rows in pipe_summaries.values() for row in rows]
    large_rows = [r for r in all_pipe_rows if int(r["payload_bytes"]) >= 262_144]
    write_json_report(
        args.out,
        records,
        benchmark="micro",
        meta={
            "backends": list(backends),
            "ranks": args.ranks,
            "iterations": iterations,
            "warmup": args.warmup,
            "sizes": list(sizes),
            "quick": bool(args.quick),
            "speedup_summary": [row for s in summaries.values() for row in s],
            "min_speedup": min_speedup,
            "small_payload_speedups": small,
            "pipelined_summary": all_pipe_rows,
            "pipelined_speedups_large": [r["speedup"] for r in large_rows],
            "backend_comparison": crossover,
            "overlap_demo": overlap_rows,
            "telemetry": telemetry_row,
            "elasticity": {
                k: v for k, v in elasticity.items() if k != "table"
            },
            "detection": {
                k: v for k, v in detection.items() if k != "table"
            },
            "baseline_report": "BENCH_pr4.json",
        },
    )
    for backend in backends:
        print(format_kv_table(
            summaries[backend],
            title=f"plan-cache speedup (cold / cached) [{backend}]",
        ))
        print(format_kv_table(
            pipe_summaries[backend],
            title=f"pipelined vs monolithic (both cached) [{backend}]",
        ))
    if crossover:
        print(format_kv_table(
            crossover, title="threaded vs shm (cached path, max-over-ranks)"
        ))
    if overlap_rows:
        print(f"\noverlap demo: blocking {overlap_rows['blocking_seconds']*1e3:.2f} ms"
              f" vs overlapped {overlap_rows['overlapped_seconds']*1e3:.2f} ms"
              f" ({overlap_rows['speedup']:.2f}x, bit-identical="
              f"{overlap_rows['results_match']})")
    if elasticity:
        print()
        print(elasticity["table"])
    if detection:
        print()
        print(detection["table"])
        slow = [r for r in detection["rows"] if not r["within_budget"]]
        if slow:
            print(f"\ndetection too slow for the degraded window in "
                  f"{len(slow)} cell(s)")
            return 1
    if telemetry_row:
        print(f"\ntelemetry cell [{telemetry_row['backend']}]: bare "
              f"{telemetry_row['base_seconds']*1e3:.2f} ms vs instrumented "
              f"{telemetry_row['telemetry_seconds']*1e3:.2f} ms "
              f"({telemetry_row['overhead']:.2f}x, results_match="
              f"{telemetry_row['results_match']})")
    print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
