"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper plots; since this is a
terminal-first reproduction there is no plotting dependency — the report
functions emit aligned text tables that can be diffed, pasted into
EXPERIMENTS.md or loaded into any plotting tool from the returned rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from .harness import SweepPoint


def series_to_rows(series: Mapping[str, Sequence[SweepPoint]]) -> List[dict]:
    """Flatten ``{label: [SweepPoint...]}`` into a list of dict rows."""
    rows: List[dict] = []
    for label, points in series.items():
        for p in points:
            rows.append(
                {
                    "algorithm": label,
                    "parameter": p.parameter,
                    "num_ranks": p.num_ranks,
                    "payload_bytes": p.payload_bytes,
                    "seconds": p.seconds,
                }
            )
    return rows


def format_series_table(
    series: Mapping[str, Sequence[SweepPoint]],
    parameter_name: str = "nodes",
    unit: str = "us",
    title: str = "",
) -> str:
    """Render one table with the sweep parameter as rows and one column per line.

    This is the textual equivalent of one subplot of the paper's figures.
    """
    labels = list(series.keys())
    parameters = sorted({p.parameter for pts in series.values() for p in pts})
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]

    by_label = {
        label: {p.parameter: p.seconds for p in points} for label, points in series.items()
    }
    width = max(12, max((len(l) for l in labels), default=12) + 2)
    header = f"{parameter_name:>12} " + " ".join(f"{label:>{width}}" for label in labels)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(header))
    lines.append(header)
    for param in parameters:
        cells = []
        for label in labels:
            value = by_label[label].get(param)
            cells.append(f"{value * scale:>{width}.2f}" if value is not None else " " * width)
        lines.append(f"{param:>12} " + " ".join(cells))
    lines.append(f"(times in {unit})")
    return "\n".join(lines)


def format_comparison(
    series: Mapping[str, Sequence[SweepPoint]],
    baseline_label: str,
    unit: str = "x",
) -> str:
    """Render speed-ups of every line relative to ``baseline_label``.

    Values above 1 mean the line is *slower* than the baseline at that
    sweep point (time ratio), matching how the paper quotes "1.78x and
    2.26x" improvements of GASPI over the MPI rings.
    """
    if baseline_label not in series:
        raise KeyError(f"baseline {baseline_label!r} not among {sorted(series)}")
    base = {p.parameter: p.seconds for p in series[baseline_label]}
    labels = [l for l in series if l != baseline_label]
    parameters = sorted(base.keys())
    width = max(12, max((len(l) for l in labels), default=12) + 2)
    lines = [
        f"time relative to {baseline_label!r} (>1 means slower than the baseline)",
        f"{'param':>12} " + " ".join(f"{label:>{width}}" for label in labels),
    ]
    for param in parameters:
        cells = []
        for label in labels:
            other = {p.parameter: p.seconds for p in series[label]}.get(param)
            if other is None or base[param] == 0:
                cells.append(" " * width)
            else:
                cells.append(f"{other / base[param]:>{width}.2f}")
        lines.append(f"{param:>12} " + " ".join(cells))
    return "\n".join(lines)


def format_kv_table(rows: Iterable[Mapping[str, object]], title: str = "") -> str:
    """Render a list of homogeneous dict rows as an aligned table."""
    rows = list(rows)
    if not rows:
        return title
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{c:>{widths[c]}}" for c in columns))
    for r in rows:
        lines.append("  ".join(f"{_fmt(r.get(c)):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
