"""Notification board: GASPI's weak synchronisation primitive.

GASPI complements one-sided writes with *notifications*: small integer
values attached to a segment that a remote rank can set atomically.  The
receiver polls or blocks on a range of notification ids
(``gaspi_notify_waitsome``) and atomically resets a slot
(``gaspi_notify_reset``), which returns the old value.

The crucial guarantee — restated in Section II of the paper — is that when
a notification posted by ``gaspi_write_notify`` becomes visible at the
receiver, the data of the same request is already visible in the target
segment.  :class:`NotificationBoard` enforces exactly this ordering because
the threaded runtime always applies the data copy *before* calling
:meth:`NotificationBoard.post`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

import numpy as np

from .constants import DEFAULT_NOTIFICATION_COUNT, GASPI_BLOCK
from .errors import GaspiInvalidArgumentError, GaspiTimeoutError


class NotificationBoard:
    """Thread-safe array of notification slots attached to one segment.

    Parameters
    ----------
    num_slots:
        Number of notification ids available (``0 .. num_slots - 1``).

    Notes
    -----
    Slot values follow GASPI semantics:

    * a value of ``0`` means "no notification pending";
    * remote ranks post values ``> 0`` with :meth:`post`;
    * :meth:`reset` atomically swaps a slot back to ``0`` and returns the
      previous value, so a waiter can consume a notification exactly once
      even when several threads race on the same slot.

    The slot store is a preallocated flat ``int64`` array indexed by
    notification id — the board is touched on every message, and hashing
    ids into a dict while holding the condition lock was pure overhead.
    (An array also makes the allocation free: ``np.zeros`` is
    calloc-backed, so creating a segment does not pay for 64k slots up
    front the way a Python list would.)  Validation and coercion happen
    *outside* the lock; the critical sections in :meth:`post` and
    :meth:`reset` are a single slot assignment (plus the waiter wake-up),
    and range scans (:meth:`drain`, :meth:`pending_ids`) are vectorized.
    """

    def __init__(self, num_slots: int = DEFAULT_NOTIFICATION_COUNT) -> None:
        if num_slots <= 0:
            raise GaspiInvalidArgumentError(
                f"notification board needs at least one slot, got {num_slots}"
            )
        self._num_slots = int(num_slots)
        self._values = np.zeros(self._num_slots, dtype=np.int64)
        self._cond = threading.Condition()
        #: Monotonic counter of post() calls, useful for tests and tracing.
        self.posted_count = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_slots(self) -> int:
        """Number of notification ids this board provides."""
        return self._num_slots

    def peek(self, notification_id: int) -> int:
        """Return the current value of a slot without consuming it.

        Lock-free: reading one array element is atomic under the GIL, and
        a peek is by nature a racy snapshot anyway.
        """
        self._check_id(notification_id)
        return int(self._values[notification_id])

    def probe(self, begin: int = 0, count: Optional[int] = None) -> bool:
        """Lock-free probe: is any slot in ``[begin, begin + count)`` set?

        The nonblocking progress engine polls with this between compute
        steps; like :meth:`peek` it is a racy snapshot by nature, so it
        takes no lock — a pump that misses a just-posted notification
        simply catches it on the next pump.
        """
        if count is None:
            count = self._num_slots - begin
        self._check_id(begin)
        values = self._values
        if count == 1:
            return values[begin] > 0
        return bool(values[begin : begin + count].max(initial=0) > 0)

    def pending_ids(self) -> list[int]:
        """Return the sorted list of slots that currently hold a value > 0."""
        with self._cond:
            return [int(nid) for nid in np.flatnonzero(self._values > 0)]

    # ------------------------------------------------------------------ #
    # GASPI operations
    # ------------------------------------------------------------------ #
    def post(self, notification_id: int, value: int = 1) -> None:
        """Set a notification slot (remote side of ``gaspi_notify``).

        GASPI requires notification values to be strictly positive; a zero
        value would be indistinguishable from "not notified".  Validation
        and coercion run outside the lock; the lock-held region is the
        slot assignment and the waiter wake-up only.
        """
        self._check_id(notification_id)
        value = int(value)
        if value <= 0:
            raise GaspiInvalidArgumentError(
                f"notification values must be > 0, got {value}"
            )
        with self._cond:
            self._values[notification_id] = value
            self.posted_count += 1
            self._cond.notify_all()

    def reset(self, notification_id: int) -> int:
        """Atomically reset a slot to zero and return its previous value.

        Mirrors ``gaspi_notify_reset``.  Returns 0 when the slot was empty.
        The critical section is the read-and-clear swap only.
        """
        self._check_id(notification_id)
        values = self._values
        with self._cond:
            old = int(values[notification_id])
            values[notification_id] = 0
        return old

    def drain(self, begin: int = 0, count: Optional[int] = None) -> Dict[int, int]:
        """Atomically consume every pending slot in ``[begin, begin + count)``.

        Returns ``{id: value}`` for the slots that held a value > 0; all of
        them are reset in one critical section, so a concurrent ``post``
        either lands entirely before (and is drained) or entirely after
        (and stays pending).  This is the timeout-free sweep the degraded
        collectives run after their detection deadline.
        """
        if count is None:
            count = self._num_slots - begin
        if count <= 0:
            raise GaspiInvalidArgumentError(f"count must be positive, got {count}")
        self._check_id(begin)
        self._check_id(begin + count - 1)
        end = begin + count
        values = self._values
        with self._cond:
            window = values[begin:end]
            pending = np.flatnonzero(window > 0)
            hits = {int(begin + i): int(window[i]) for i in pending}
            window[pending] = 0
            return hits

    def wait_some(
        self,
        begin: int = 0,
        count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        """Wait until any slot in ``[begin, begin + count)`` is non-zero.

        Mirrors ``gaspi_notify_waitsome``.

        Returns
        -------
        The id of one pending notification in the range, or ``None`` when a
        finite ``timeout`` expired without any notification
        (``GASPI_TIMEOUT`` in the specification).  With ``timeout == 0``
        (``GASPI_TEST``) the board is probed exactly once.

        Raises
        ------
        GaspiTimeoutError
            Never raised directly here — timeouts are reported by returning
            ``None`` so the SSP collective can fall back to stale data
            without exception-driven control flow.  Callers that consider a
            timeout fatal should raise :class:`GaspiTimeoutError` themselves.
        """
        if count is None:
            count = self._num_slots - begin
        if count <= 0:
            raise GaspiInvalidArgumentError(f"count must be positive, got {count}")
        self._check_id(begin)
        self._check_id(begin + count - 1)

        deadline = None if timeout == GASPI_BLOCK else timeout

        with self._cond:
            start = _monotonic()
            while True:
                hit = self._first_pending(begin, count)
                if hit is not None:
                    return hit
                if deadline is not None:
                    remaining = deadline - (_monotonic() - start)
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def wait_all(
        self,
        ids: Iterable[int],
        timeout: float = GASPI_BLOCK,
    ) -> None:
        """Wait until *every* slot in ``ids`` is non-zero (helper, not GASPI).

        Convenience used by collectives that need all children to have
        contributed (e.g. the BST reduce root).  Raises
        :class:`GaspiTimeoutError` on a finite timeout.
        """
        wanted = list(ids)
        for nid in wanted:
            self._check_id(nid)
        deadline = None if timeout == GASPI_BLOCK else timeout
        with self._cond:
            start = _monotonic()
            while True:
                if all(self._values[nid] > 0 for nid in wanted):
                    return
                if deadline is not None:
                    remaining = deadline - (_monotonic() - start)
                    if remaining <= 0:
                        missing = [n for n in wanted if self._values[n] == 0]
                        raise GaspiTimeoutError(
                            f"timed out waiting for notifications {missing}"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()  # pragma: no cover - blocking path

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _first_pending(self, begin: int, count: int) -> Optional[int]:
        values = self._values
        if count == 1:  # the common "wait for this one id" fast path
            return begin if values[begin] > 0 else None
        hits = np.flatnonzero(values[begin : begin + count] > 0)
        return int(begin + hits[0]) if hits.size else None

    def _check_id(self, notification_id: int) -> None:
        if not (0 <= notification_id < self._num_slots):
            raise GaspiInvalidArgumentError(
                f"notification id {notification_id} outside [0, {self._num_slots})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NotificationBoard(slots={self._num_slots}, "
            f"pending={len(self.pending_ids())})"
        )


def _monotonic() -> float:
    import time

    return time.monotonic()
