"""Thread-per-rank GASPI runtime with real data movement.

:class:`ThreadedWorld` owns the shared state (each rank's segments,
barriers, counters); :class:`ThreadedRuntime` is the per-rank facade
implementing :class:`~repro.gaspi.runtime.GaspiRuntime`.

Semantics implemented:

* ``write`` / ``write_notify`` copy bytes from the caller's local segment
  into the target rank's segment.  In ``immediate`` delivery mode the copy
  happens synchronously; in ``async`` mode it is performed by a delivery
  thread, but the data copy always precedes the notification post, which is
  the GASPI visibility guarantee (Section II of the paper).
* ``notify_waitsome`` / ``notify_reset`` operate on the local segment's
  notification board.
* ``wait`` flushes a queue (blocks until all locally posted requests have
  been applied at their targets).
* ``barrier`` uses a reusable threading barrier per group.
* ``atomic_fetch_add`` provides GASPI's atomic counter on int64 slots.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .constants import (
    DEFAULT_MAX_SEGMENTS,
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    DEFAULT_QUEUE_COUNT,
    DEFAULT_QUEUE_DEPTH,
    GASPI_BLOCK,
)
from .errors import (
    GaspiInvalidArgumentError,
    GaspiResourceError,
    GaspiSegmentError,
    GaspiTimeoutError,
)
from .group import Group
from .notifications import NotificationBoard  # noqa: F401  (re-exported for tests)
from .queue import CommunicationQueue, DeliveryWorker, WriteRequest
from .runtime import GaspiRuntime
from .segment import Segment


@dataclass
class WorldConfig:
    """Configuration of a :class:`ThreadedWorld`.

    Attributes
    ----------
    delivery:
        ``"immediate"`` applies remote writes synchronously in the posting
        thread (deterministic, fast).  ``"async"`` routes them through a
        delivery thread, exercising true communication/computation overlap.
    delivery_delay:
        Artificial per-request delay (seconds) in ``async`` mode, useful to
        stress-test notification semantics and the SSP stale-read path.
    queue_count / queue_depth:
        Number of communication queues per rank and their depth.
    max_segments:
        Maximum number of segments per rank.
    collect_stats:
        Record per-rank traffic statistics (bytes/messages sent).
    """

    delivery: str = "immediate"
    delivery_delay: float = 0.0
    queue_count: int = DEFAULT_QUEUE_COUNT
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_segments: int = DEFAULT_MAX_SEGMENTS
    collect_stats: bool = True

    def __post_init__(self) -> None:
        if self.delivery not in ("immediate", "async"):
            raise GaspiInvalidArgumentError(
                f"delivery must be 'immediate' or 'async', got {self.delivery!r}"
            )
        if self.queue_count <= 0:
            raise GaspiInvalidArgumentError("queue_count must be positive")


@dataclass
class TrafficStats:
    """Per-rank communication counters collected by the threaded world."""

    messages_sent: int = 0
    bytes_sent: int = 0
    notifications_sent: int = 0
    barriers: int = 0
    by_peer: Dict[int, int] = field(default_factory=dict)

    def record_send(self, target: int, nbytes: int, notified: bool) -> None:
        self.messages_sent += 1
        self.bytes_sent += int(nbytes)
        if notified:
            self.notifications_sent += 1
        self.by_peer[target] = self.by_peer.get(target, 0) + int(nbytes)


class ThreadedWorld:
    """Shared state of an in-process GASPI world with ``size`` ranks."""

    def __init__(self, size: int, config: Optional[WorldConfig] = None) -> None:
        if size <= 0:
            raise GaspiInvalidArgumentError(f"world size must be positive, got {size}")
        self.size = int(size)
        self.config = config or WorldConfig()
        # segments[rank][segment_id]
        self._segments: Dict[int, Dict[int, Segment]] = {r: {} for r in range(size)}
        self._segments_lock = threading.Lock()
        # queues[rank][queue_id]
        self._queues: Dict[int, Dict[int, CommunicationQueue]] = {
            r: {
                q: CommunicationQueue(q, self.config.queue_depth)
                for q in range(self.config.queue_count)
            }
            for r in range(size)
        }
        self._barriers: Dict[Group, threading.Barrier] = {}
        self._barriers_lock = threading.Lock()
        self._atomic_lock = threading.Lock()
        self.stats: Dict[int, TrafficStats] = {r: TrafficStats() for r in range(size)}
        self._delivery: Optional[DeliveryWorker] = None
        if self.config.delivery == "async":
            self._delivery = DeliveryWorker(delay=self.config.delivery_delay)
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def runtime(self, rank: int) -> "ThreadedRuntime":
        """Return the per-rank runtime facade."""
        if not (0 <= rank < self.size):
            raise GaspiInvalidArgumentError(
                f"rank {rank} outside world of size {self.size}"
            )
        return ThreadedRuntime(self, rank)

    def runtimes(self) -> list["ThreadedRuntime"]:
        """Per-rank runtime facades for every rank in the world."""
        return [self.runtime(r) for r in range(self.size)]

    def close(self) -> None:
        """Stop background delivery threads (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._delivery is not None:
            self._delivery.shutdown()
            self._delivery = None

    def __enter__(self) -> "ThreadedWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # segment registry
    # ------------------------------------------------------------------ #
    def create_segment(
        self, rank: int, segment_id: int, size: int, num_notifications: int
    ) -> Segment:
        with self._segments_lock:
            table = self._segments[rank]
            if segment_id in table:
                raise GaspiResourceError(
                    f"rank {rank}: segment {segment_id} already exists"
                )
            if len(table) >= self.config.max_segments:
                raise GaspiResourceError(
                    f"rank {rank}: segment limit {self.config.max_segments} reached"
                )
            seg = Segment(segment_id, size, rank, num_notifications)
            table[segment_id] = seg
            return seg

    def rebind_segment(self, rank: int, segment_id: int, array: np.ndarray) -> None:
        with self._segments_lock:
            try:
                seg = self._segments[rank][segment_id]
            except KeyError as exc:
                raise GaspiSegmentError(
                    f"rank {rank}: cannot bind unknown segment {segment_id}"
                ) from exc
        seg.rebind(array)

    def delete_segment(self, rank: int, segment_id: int) -> None:
        with self._segments_lock:
            table = self._segments[rank]
            if segment_id not in table:
                raise GaspiSegmentError(
                    f"rank {rank}: cannot delete unknown segment {segment_id}"
                )
            del table[segment_id]

    def get_segment(self, rank: int, segment_id: int) -> Segment:
        with self._segments_lock:
            try:
                return self._segments[rank][segment_id]
            except KeyError as exc:
                raise GaspiSegmentError(
                    f"rank {rank} has no segment with id {segment_id}"
                ) from exc

    # ------------------------------------------------------------------ #
    # communication core
    # ------------------------------------------------------------------ #
    def post(self, request: WriteRequest) -> None:
        """Route a posted request according to the delivery mode."""
        queue = self._queues[request.source_rank][request.queue]
        queue.post()

        def apply_and_complete() -> None:
            try:
                self._apply(request)
            finally:
                queue.complete()

        if self._delivery is None:
            apply_and_complete()
        else:
            request.apply = apply_and_complete
            self._delivery.submit(request)

        if self.config.collect_stats:
            self.stats[request.source_rank].record_send(
                request.target_rank,
                request.nbytes,
                request.notification_id is not None,
            )

    def _apply(self, request: WriteRequest) -> None:
        """Apply a request at its target: data first, then the notification."""
        target_segment = self.get_segment(request.target_rank, request.segment_id)
        if request.data is not None and request.data.size > 0:
            target_segment.write_bytes(request.offset, request.data)
        if request.notification_id is not None:
            target_segment.notifications.post(
                request.notification_id, request.notification_value
            )

    def queue_of(self, rank: int, queue_id: int) -> CommunicationQueue:
        try:
            return self._queues[rank][queue_id]
        except KeyError as exc:
            raise GaspiInvalidArgumentError(
                f"rank {rank} has no queue {queue_id} "
                f"(queue_count={self.config.queue_count})"
            ) from exc

    # ------------------------------------------------------------------ #
    # barrier
    # ------------------------------------------------------------------ #
    def barrier_for(self, group: Group) -> threading.Barrier:
        with self._barriers_lock:
            barrier = self._barriers.get(group)
            if barrier is None or barrier.broken:
                # A barrier broken by a timed-out waiter (the degraded
                # collectives' entry handshake) stays broken; hand out a
                # fresh one so later collectives on the group still work.
                barrier = threading.Barrier(group.size)
                self._barriers[group] = barrier
            return barrier

    # ------------------------------------------------------------------ #
    # atomics
    # ------------------------------------------------------------------ #
    def atomic_fetch_add(
        self, target_rank: int, segment_id: int, offset: int, value: int
    ) -> int:
        seg = self.get_segment(target_rank, segment_id)
        with self._atomic_lock:
            slot = seg.view(np.int64, offset=offset, count=1)
            old = int(slot[0])
            slot[0] = old + int(value)
            return old


class ThreadedRuntime(GaspiRuntime):
    """Per-rank facade over a :class:`ThreadedWorld`."""

    def __init__(self, world: ThreadedWorld, rank: int) -> None:
        self._world = world
        self._rank = int(rank)

    # -- identity ------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    @property
    def world(self) -> ThreadedWorld:
        """The shared world this runtime belongs to."""
        return self._world

    # -- segments ------------------------------------------------------- #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        self._world.create_segment(self._rank, segment_id, size, num_notifications)

    def segment_delete(self, segment_id: int) -> None:
        self._world.delete_segment(self._rank, segment_id)

    def segment_bind(self, segment_id: int, array: np.ndarray) -> None:
        self._world.rebind_segment(self._rank, segment_id, array)

    def segment_view(
        self,
        segment_id: int,
        dtype=np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        return self._world.get_segment(self._rank, segment_id).view(
            dtype=dtype, offset=offset, count=count
        )

    def segment_size(self, segment_id: int) -> int:
        return self._world.get_segment(self._rank, segment_id).size

    def segment_read(
        self,
        segment_id: int,
        dtype=np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        dtype = np.dtype(dtype)
        seg = self._world.get_segment(self._rank, segment_id)
        if count is None:
            count = (seg.size - offset) // dtype.itemsize
        raw = seg.read_bytes(offset, count * dtype.itemsize)
        return raw.view(dtype)

    # -- one-sided communication ---------------------------------------- #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        self._check_target(target_rank)
        data = self._read_local(segment_id_local, offset_local, size)
        self._world.post(
            WriteRequest(
                source_rank=self._rank,
                target_rank=target_rank,
                segment_id=segment_id_remote,
                offset=offset_remote,
                data=data,
                notification_id=None,
                notification_value=0,
                queue=queue,
            )
        )

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._check_target(target_rank)
        self._world.post(
            WriteRequest(
                source_rank=self._rank,
                target_rank=target_rank,
                segment_id=segment_id_remote,
                offset=0,
                data=None,
                notification_id=notification_id,
                notification_value=notification_value,
                queue=queue,
            )
        )

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._check_target(target_rank)
        data = self._read_local(segment_id_local, offset_local, size)
        self._world.post(
            WriteRequest(
                source_rank=self._rank,
                target_rank=target_rank,
                segment_id=segment_id_remote,
                offset=offset_remote,
                data=data,
                notification_id=notification_id,
                notification_value=notification_value,
                queue=queue,
            )
        )

    # -- weak synchronisation ------------------------------------------- #
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        seg = self._world.get_segment(self._rank, segment_id_local)
        return seg.notifications.wait_some(
            notification_begin, notification_count, timeout
        )

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        seg = self._world.get_segment(self._rank, segment_id_local)
        return seg.notifications.reset(notification_id)

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        seg = self._world.get_segment(self._rank, segment_id_local)
        return seg.notifications.peek(notification_id)

    def notify_probe(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> bool:
        seg = self._world.get_segment(self._rank, segment_id_local)
        return seg.notifications.probe(notification_begin, notification_count)

    def notify_drain(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> Dict[int, int]:
        seg = self._world.get_segment(self._rank, segment_id_local)
        return seg.notifications.drain(notification_begin, notification_count)

    # -- queues / barriers ----------------------------------------------- #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        self._world.queue_of(self._rank, queue).wait(timeout)

    def barrier(
        self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK
    ) -> None:
        group = group or self.group_all
        if not group.contains(self._rank):
            raise GaspiInvalidArgumentError(
                f"rank {self._rank} called barrier on group {group} it is not part of"
            )
        barrier = self._world.barrier_for(group)
        try:
            if timeout == GASPI_BLOCK:
                barrier.wait()
            else:
                barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as exc:
            # Either this waiter timed out (breaking the barrier) or another
            # one did; surface both as the GASPI timeout condition so a
            # finite-timeout barrier can never hang on a dead rank.
            raise GaspiTimeoutError(
                f"barrier over {group} timed out after {timeout} s"
            ) from exc
        if self._world.config.collect_stats:
            self._world.stats[self._rank].barriers += 1

    # -- atomics ---------------------------------------------------------- #
    def atomic_fetch_add(
        self,
        segment_id: int,
        offset: int,
        target_rank: int,
        value: int,
    ) -> int:
        self._check_target(target_rank)
        return self._world.atomic_fetch_add(target_rank, segment_id, offset, value)

    # -- internals -------------------------------------------------------- #
    def _read_local(
        self, segment_id: int, offset: int, size: int
    ) -> np.ndarray:
        # Zero-copy: hand the delivery layer a view of the source segment
        # instead of an intermediate bytes copy.  GASPI requires the source
        # region to stay stable until wait() flushes the queue, so the view
        # is still valid (and unmodified) when an async worker applies it.
        seg = self._world.get_segment(self._rank, segment_id)
        return seg.view_bytes(offset, size)

    def _check_target(self, target_rank: int) -> None:
        if not (0 <= target_rank < self._world.size):
            raise GaspiInvalidArgumentError(
                f"target rank {target_rank} outside world of size {self._world.size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadedRuntime(rank={self._rank}, size={self.size})"
