"""Abstract GASPI runtime interface.

Every collective algorithm in :mod:`repro.core` is written against this
interface, exactly as the paper's collectives are written against the
GASPI API.  The method names follow GPI-2 (``gaspi_write_notify`` →
:meth:`GaspiRuntime.write_notify`, …) with Pythonic signatures:

* byte offsets and sizes, as in GASPI;
* NumPy arrays for typed access through :meth:`segment_view`;
* timeouts in seconds, ``GASPI_BLOCK`` meaning "block forever" and
  ``GASPI_TEST`` meaning "poll once".
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Sequence

import numpy as np

from .constants import (
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    GASPI_BLOCK,
)
from .group import Group


class GaspiRuntime(abc.ABC):
    """One rank's handle onto the GASPI world.

    Concrete implementations:

    * :class:`repro.gaspi.threaded.ThreadedRuntime` — real data movement
      between rank threads inside one process.
    """

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This process's rank (``gaspi_proc_rank``)."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of ranks in the world (``gaspi_proc_num``)."""

    @property
    def group_all(self) -> Group:
        """The group containing every rank (``GASPI_GROUP_ALL``)."""
        return Group.world(self.size)

    @property
    def fault_injected(self) -> bool:
        """True when this runtime (or a layer it wraps) injects faults
        that can lose contributions (crashes or message drops).

        Group-scoped views forward it, so a sub-communicator carved out of
        a fault-injected world still dispatches fault-tolerant algorithms
        even though the fault plan itself lives at the world layer.  Pure
        timing perturbations (delays, arrival skew) do not set it: they
        make ranks late, not absent, and the tuned regular algorithms
        remain the right choice under them.
        """
        return False

    # ------------------------------------------------------------------ #
    # segments
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        """Allocate and register a segment (collective over all ranks in GPI-2).

        In this substrate every rank creates its own copy of the segment; the
        call is local but every communicating rank must create the same
        ``segment_id`` before it is used as a remote target.
        """

    @abc.abstractmethod
    def segment_delete(self, segment_id: int) -> None:
        """Release a segment."""

    @abc.abstractmethod
    def segment_view(
        self,
        segment_id: int,
        dtype=np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Typed NumPy view of the *local* copy of a segment."""

    @abc.abstractmethod
    def segment_size(self, segment_id: int) -> int:
        """Size in bytes of a local segment."""

    @abc.abstractmethod
    def segment_read(
        self,
        segment_id: int,
        dtype=np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Consistent *copy* of a byte range of the local segment.

        Unlike :meth:`segment_view`, the returned array is a snapshot taken
        atomically with respect to incoming remote writes — the read a rank
        performs on its SSP mailbox (``rcv_data_vec``) while a peer may be
        overwriting it.
        """

    def segment_bind(self, segment_id: int, array: np.ndarray) -> None:
        """Bind user memory as the registered window of an existing segment.

        The analogue of ``gaspi_segment_bind``: the segment's notification
        board is untouched, only the backing memory is replaced, so remote
        ``write_notify`` calls land directly in (and local posts read
        directly from) application buffers — the zero-copy data path of the
        pipelined collectives.  The caller must guarantee no remote write
        is in flight toward the segment when the memory is swapped.
        Runtimes without bind support raise :class:`NotImplementedError`;
        callers probe :attr:`supports_bind` first.
        """
        raise NotImplementedError

    @property
    def supports_bind(self) -> bool:
        """True when :meth:`segment_bind` is available on this runtime."""
        return type(self).segment_bind is not GaspiRuntime.segment_bind

    def segment_exists(self, segment_id: int) -> bool:
        """True if this rank has created ``segment_id``."""
        try:
            self.segment_size(segment_id)
            return True
        except Exception:
            return False

    def traced(self, sink: Any) -> "GaspiRuntime":
        """Wrap this runtime so every post/consume is recorded into ``sink``.

        ``sink`` is a :class:`repro.analysis.tracing.TraceSink`; the
        returned wrapper forwards all operations to ``self`` while
        recording the protocol events the static checkers consume
        (:func:`repro.analysis.analyze`).  Imported lazily so the core
        runtime stack carries no dependency on the analysis package.
        """
        from ..analysis.tracing import TracingRuntime

        return TracingRuntime(self, sink)

    def instrumented(self, telemetry: Any) -> "GaspiRuntime":
        """Wrap this runtime so traffic and wait times feed ``telemetry``.

        ``telemetry`` is a :class:`repro.telemetry.Telemetry` registry; the
        returned wrapper forwards all operations to ``self`` while counting
        writes, bytes, notifications, and wait/barrier latencies.  Imported
        lazily so the core runtime stack carries no dependency on the
        telemetry package.
        """
        from ..telemetry.runtime import TelemetryRuntime

        return TelemetryRuntime(self, telemetry)

    @property
    def telemetry(self) -> Any:
        """The attached telemetry registry, or None when uninstrumented.

        Overridden by :class:`repro.telemetry.runtime.TelemetryRuntime`
        (returns the live registry) and forwarded by the wrapping runtimes
        so downstream instrumentation (the pipeline driver, the fault
        vertical) can discover the registry with one attribute read.
        """
        return None

    # ------------------------------------------------------------------ #
    # one-sided communication
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        """Post a one-sided write (``gaspi_write``)."""

    @abc.abstractmethod
    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        """Post a remote notification (``gaspi_notify``)."""

    @abc.abstractmethod
    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        """Post a write followed by a notification (``gaspi_write_notify``).

        GASPI guarantees the data is visible at the target before the
        notification is.
        """

    # ------------------------------------------------------------------ #
    # weak synchronisation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        """Wait for any notification in a range (``gaspi_notify_waitsome``).

        Returns the id of a pending notification, or ``None`` on timeout.
        """

    @abc.abstractmethod
    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        """Atomically reset a local notification, returning its old value."""

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        """Read a notification value without resetting it (convenience)."""
        raise NotImplementedError

    def notify_probe(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> bool:
        """Cheap non-consuming probe: any notification pending in a range?

        The nonblocking progress engine calls this once per pump per
        in-flight pipeline, so implementations should make it lock-free
        where possible (a stale answer is fine — the next pump retries).
        The default delegates to a zero-timeout :meth:`notify_waitsome`,
        which wrappers forward transparently.
        """
        return (
            self.notify_waitsome(
                segment_id_local, notification_begin, notification_count, timeout=0.0
            )
            is not None
        )

    def notify_drain(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> dict:
        """Consume every pending notification in a range, without blocking.

        Returns ``{notification_id: value}`` for all slots of the range
        that held a value > 0 (each reset exactly once).  The degraded
        collectives use this as a final non-blocking sweep after their
        detection deadline, so a contribution racing the timeout is still
        credited rather than misreported as missing.
        """
        drained: dict = {}
        while True:
            nid = self.notify_waitsome(
                segment_id_local,
                notification_begin,
                notification_count,
                timeout=0.0,
            )
            if nid is None:
                return drained
            value = self.notify_reset(segment_id_local, nid)
            if value > 0:
                drained[nid] = drained.get(nid, 0) + value

    # ------------------------------------------------------------------ #
    # queues and global synchronisation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        """Flush a queue: block until all posted requests are locally complete."""

    @abc.abstractmethod
    def barrier(self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK) -> None:
        """Barrier over a group (``gaspi_barrier``)."""

    # ------------------------------------------------------------------ #
    # atomics (used by a few collectives and by tests)
    # ------------------------------------------------------------------ #
    def atomic_fetch_add(
        self,
        segment_id: int,
        offset: int,
        target_rank: int,
        value: int,
    ) -> int:
        """Atomic fetch-and-add of an int64 at a remote segment offset."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # convenience helpers shared by collectives
    # ------------------------------------------------------------------ #
    def write_notify_array(
        self,
        source: np.ndarray,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        """Copy ``source`` into the local segment and ``write_notify`` it.

        A common idiom in the paper's collectives: stage the payload in the
        local communication segment, then push it to the peer together with
        a notification.
        """
        staged = self.segment_view(
            segment_id_local, dtype=source.dtype, offset=offset_local, count=source.size
        )
        staged[:] = source
        self.write_notify(
            segment_id_local,
            offset_local,
            target_rank,
            segment_id_remote,
            offset_remote,
            source.nbytes,
            notification_id,
            notification_value,
            queue,
        )

    def wait_and_reset(
        self,
        segment_id_local: int,
        notification_id: int,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        """Wait for one specific notification and reset it.

        Returns the notification value, or ``None`` on timeout.
        """
        got = self.notify_waitsome(
            segment_id_local, notification_id, 1, timeout=timeout
        )
        if got is None:
            return None
        value = self.notify_reset(segment_id_local, got)
        return value if value > 0 else None

    def ranks(self) -> Sequence[int]:
        """All ranks of the world, convenience for iteration."""
        return range(self.size)
