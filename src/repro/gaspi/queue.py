"""Communication queues and outstanding-request bookkeeping.

GASPI posts one-sided operations onto *queues*; ``gaspi_wait`` flushes a
queue, after which the local source buffers may be reused.  The threaded
runtime supports two delivery modes:

* ``immediate`` — the data copy happens synchronously inside the posting
  call (the queue only counts requests).  Deterministic and fast; the
  default for tests and benchmarks.
* ``async`` — requests are handed to a per-world delivery thread which
  applies them later (optionally with a small jitter).  This mode exercises
  the real GASPI overlap semantics: posting returns immediately, data and
  notification become visible asynchronously, and ``wait`` genuinely blocks
  until local completion.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .constants import DEFAULT_QUEUE_DEPTH, GASPI_BLOCK
from .errors import GaspiQueueFullError, GaspiTimeoutError


@dataclass
class WriteRequest:
    """One posted one-sided operation (write, notify or write_notify)."""

    source_rank: int
    target_rank: int
    segment_id: int
    offset: int
    data: Optional[np.ndarray]
    notification_id: Optional[int]
    notification_value: int
    queue: int
    #: sequence number within the posting queue, for tracing
    sequence: int = 0
    #: callback applying the request at the target (set by the runtime)
    apply: Optional[Callable[[], None]] = field(default=None, repr=False)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (0 for a pure notification)."""
        return 0 if self.data is None else int(self.data.size)


class CommunicationQueue:
    """Tracks outstanding requests posted by one rank on one queue id."""

    def __init__(self, queue_id: int, depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        self.queue_id = int(queue_id)
        self.depth = int(depth)
        self._outstanding = 0
        self._posted_total = 0
        self._cond = threading.Condition()

    # ------------------------------------------------------------------ #
    @property
    def outstanding(self) -> int:
        """Number of posted but not yet completed requests."""
        with self._cond:
            return self._outstanding

    @property
    def posted_total(self) -> int:
        """Total number of requests ever posted to this queue."""
        with self._cond:
            return self._posted_total

    def post(self) -> int:
        """Account for a newly posted request; returns its sequence number."""
        with self._cond:
            if self._outstanding >= self.depth:
                raise GaspiQueueFullError(
                    f"queue {self.queue_id} already has {self._outstanding} "
                    f"outstanding requests (depth {self.depth}); call wait()"
                )
            self._outstanding += 1
            self._posted_total += 1
            return self._posted_total

    def complete(self) -> None:
        """Mark one outstanding request as locally complete."""
        with self._cond:
            if self._outstanding <= 0:
                raise RuntimeError(
                    f"queue {self.queue_id}: complete() without outstanding request"
                )
            self._outstanding -= 1
            if self._outstanding == 0:
                self._cond.notify_all()

    def wait(self, timeout: float = GASPI_BLOCK) -> None:
        """Block until every outstanding request on this queue completed.

        Mirrors ``gaspi_wait``: after it returns, the local source buffers of
        all posted operations may be reused.
        """
        deadline = None if timeout == GASPI_BLOCK else timeout
        with self._cond:
            import time

            start = time.monotonic()
            while self._outstanding > 0:
                if deadline is not None:
                    remaining = deadline - (time.monotonic() - start)
                    if remaining <= 0:
                        raise GaspiTimeoutError(
                            f"gaspi_wait on queue {self.queue_id} timed out with "
                            f"{self._outstanding} outstanding requests"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommunicationQueue(id={self.queue_id}, outstanding={self.outstanding})"


class DeliveryWorker:
    """Background thread delivering asynchronously posted requests in order.

    A single worker per world preserves per-(source, target) ordering, which
    GASPI guarantees for requests posted to the same queue.
    """

    def __init__(self, delay: float = 0.0) -> None:
        self._delay = float(delay)
        self._pending: List[WriteRequest] = []
        self._cond = threading.Condition()
        self._stop = False
        self._thread = threading.Thread(
            target=self._run, name="gaspi-delivery", daemon=True
        )
        self._thread.start()

    def submit(self, request: WriteRequest) -> None:
        with self._cond:
            if self._stop:
                raise RuntimeError("delivery worker already stopped")
            self._pending.append(request)
            self._cond.notify_all()

    def shutdown(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        import time

        while True:
            with self._cond:
                while not self._pending and not self._stop:
                    self._cond.wait()
                if self._stop and not self._pending:
                    return
                request = self._pending.pop(0)
            if self._delay > 0:
                time.sleep(self._delay)
            try:
                if request.apply is not None:
                    request.apply()
            except Exception:  # pragma: no cover - defensive: surfaced via queue
                # The posting rank will observe the failure as a hung wait();
                # re-raise in the worker so the test harness sees a traceback.
                raise
