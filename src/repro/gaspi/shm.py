"""Process-per-rank GASPI runtime over POSIX shared memory.

:class:`ShmRuntime` is the second concrete implementation of
:class:`~repro.gaspi.runtime.GaspiRuntime` — one OS *process* per rank
instead of one thread, with segments allocated in
:mod:`multiprocessing.shared_memory` blocks.  It is the closest Python
analogue to real GPI-2 segments: a ``write_notify`` is a direct memcpy
into the target rank's registered memory followed by a single 8-byte
store into its notification board, with no interpreter lock shared
between ranks.  The GIL-bound :class:`~repro.gaspi.threaded.ThreadedWorld`
serialises every rank's Python bookkeeping; here each rank owns a whole
interpreter, so the collectives' protocol overhead runs truly in
parallel (on multi-core hosts) and is never convoyed behind another
rank's bytecode.

Implementation notes, mirroring the GASPI guarantees the collectives in
:mod:`repro.core` rely on:

* **Segments** are one shared-memory block each, created by the owning
  rank under a deterministic name (``{uid}-r{rank}-s{segment_id}``):
  a small int64 header, the notification board (one int64 per slot),
  then the data bytes.  Remote ranks attach lazily on first use and
  cache the mapping; a validity word in the header invalidates cached
  attachments when the owner deletes the segment.  Every collective in
  this repository fences ``segment_create`` with a barrier before the
  segment is used as a remote target (and barriers again before
  ``segment_delete``), exactly as GPI-2 requires — a missing remote
  segment therefore raises :class:`~repro.gaspi.errors.GaspiSegmentError`
  immediately, as the threaded runtime does.
* **Write-before-notify visibility**: the data copy and the notification
  store are both guarded by a (striped) cross-process lock, whose
  release/acquire pairs order the stores; the notification can never be
  observed before the data of the same request.
* **Notification waits** (``notify_waitsome``) are a busy-wait/condvar
  hybrid: a short yield-polling phase (cheap when the notification is
  already there or arrives within a scheduling quantum), then the waiter
  parks on a world-global cross-process condition variable that posters
  signal only while waiters are registered — so the posting fast path
  stays a single slot store plus one shared counter read.
* **Barrier** is a sense-reversing counter in a preallocated shared
  table, one slot per distinct group (claimed deterministically by a
  hash of the member ranks).  A finite-timeout barrier with a dead
  participant breaks for every current waiter — the degraded
  collectives' entry handshake — and leaves the slot clean for the
  next round, like the threaded world's replaced barrier.
* **``atomic_fetch_add``** is a read-modify-write of an int64 in the
  target segment under a single world-wide lock word.
* ``segment_bind`` is **not** supported (user memory of another process
  cannot be registered); :attr:`ShmRuntime.supports_bind` is False and
  the pipelined collectives transparently use their staged-slot
  fallback, exactly as on any bind-less runtime.

:func:`run_shm` is the process-world analogue of
:func:`~repro.gaspi.spmd.run_spmd`: fork one process per rank, run
``fn(runtime, *args, **kwargs)`` on each, propagate exceptions as
:class:`~repro.gaspi.spmd.SpmdError`, and sweep any leaked shared-memory
blocks afterwards.  It requires the ``fork`` start method (Linux/macOS):
worker closures and the world's synchronisation primitives are inherited
by the children instead of pickled.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import uuid
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from .constants import (
    DEFAULT_MAX_SEGMENTS,
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    DEFAULT_QUEUE_COUNT,
    GASPI_BLOCK,
)
from .errors import (
    GaspiInvalidArgumentError,
    GaspiResourceError,
    GaspiSegmentError,
    GaspiTimeoutError,
)
from .group import Group
from .runtime import GaspiRuntime
from .spmd import SpmdError
from .threaded import TrafficStats

# --------------------------------------------------------------------------- #
# shared-memory layout constants
# --------------------------------------------------------------------------- #
#: int64 header words preceding the notification board of a segment block.
_HEADER_SLOTS = 8
_HEADER_BYTES = _HEADER_SLOTS * 8
_H_VALID = 0  # 1 while the segment is live, 0 once deleted
_H_SIZE = 1  # data size in bytes
_H_NOTIF = 2  # number of notification slots
_H_POSTED = 3  # diagnostic: notifications posted into this segment

#: Barrier table geometry in the control block: per slot
#: ``[group_key, count, round, broken_round]``.
_BARRIER_SLOTS = 256
_BARRIER_FIELDS = 4

#: Cross-process locks striped over segments (write/reset serialisation).
_SEGMENT_LOCK_STRIPES = 16


def _segment_lock_index(owner_rank: int, segment_id: int) -> int:
    return (owner_rank * 7919 + segment_id) % _SEGMENT_LOCK_STRIPES


def _group_key(group: Group) -> int:
    """Deterministic nonzero 63-bit key of a group's member set."""
    key = 1469598103934665603  # FNV-1a
    for rank in group.ranks:
        key = ((key ^ (rank + 1)) * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return key or 1


def _quiet_close(shm: shared_memory.SharedMemory) -> None:
    """Close a block's mapping, tolerating still-exported NumPy views.

    Segment views handed to callers (plan accumulators, user-held
    ``segment_view`` arrays) keep the mmap's buffer exported, in which
    case ``close`` raises :class:`BufferError`.  The mapping then simply
    dies with the process — but ``SharedMemory.__del__`` would retry the
    close at garbage collection and print an "Exception ignored" notice,
    so the instance's ``close`` is neutralised after the first failure.
    """
    try:
        shm.close()
    except (BufferError, OSError):
        shm.close = lambda: None  # __del__ retries close; make it a no-op


@dataclass
class ShmConfig:
    """Configuration of a :class:`ShmWorld`.

    Attributes
    ----------
    queue_count:
        Number of communication queues per rank (writes apply
        synchronously, so queues only validate ids and count traffic).
    max_segments:
        Maximum number of live segments per rank.
    spin:
        Yield-polling iterations before a waiter parks on the shared
        condition variable.  Each miss yields the CPU, so even on a
        single core the poller cannot starve the rank it is waiting on.
    wait_slice:
        Maximum single park on the condition variable (seconds); bounds
        the latency of a wake-up racing the waiter's registration.
    collect_stats:
        Record per-rank traffic statistics (process-local).
    """

    queue_count: int = DEFAULT_QUEUE_COUNT
    max_segments: int = DEFAULT_MAX_SEGMENTS
    spin: int = 64
    wait_slice: float = 0.002
    collect_stats: bool = True

    def __post_init__(self) -> None:
        if self.queue_count <= 0:
            raise GaspiInvalidArgumentError("queue_count must be positive")
        if self.spin < 0:
            raise GaspiInvalidArgumentError("spin must be non-negative")
        if self.wait_slice <= 0:
            raise GaspiInvalidArgumentError("wait_slice must be positive")


class _SegmentBlock:
    """One mapped shared-memory block: header + notification board + data."""

    __slots__ = (
        "name",
        "owner_rank",
        "segment_id",
        "shm",
        "header",
        "notif",
        "data",
        "num_notifications",
        "size",
        "owned",
    )

    def __init__(
        self,
        name: str,
        owner_rank: int,
        segment_id: int,
        shm: shared_memory.SharedMemory,
        owned: bool,
    ) -> None:
        self.name = name
        self.owner_rank = owner_rank
        self.segment_id = segment_id
        self.shm = shm
        self.owned = owned
        header = np.frombuffer(shm.buf, dtype=np.int64, count=_HEADER_SLOTS)
        self.header = header
        self.num_notifications = int(header[_H_NOTIF])
        self.size = int(header[_H_SIZE])
        self.notif = np.frombuffer(
            shm.buf, dtype=np.int64, count=self.num_notifications, offset=_HEADER_BYTES
        )
        data_offset = _HEADER_BYTES + self.num_notifications * 8
        self.data = np.frombuffer(
            shm.buf, dtype=np.uint8, count=self.size, offset=data_offset
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, name: str, owner_rank: int, segment_id: int, size: int, num_notifications: int
    ) -> "_SegmentBlock":
        total = _HEADER_BYTES + num_notifications * 8 + size
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        except FileExistsError as exc:
            raise GaspiResourceError(
                f"shared-memory block {name!r} already exists "
                f"(segment {segment_id} of rank {owner_rank} not cleaned up?)"
            ) from exc
        header = np.frombuffer(shm.buf, dtype=np.int64, count=_HEADER_SLOTS)
        header[_H_SIZE] = size
        header[_H_NOTIF] = num_notifications
        header[_H_POSTED] = 0
        header[_H_VALID] = 1  # published last: attachers check this word
        return cls(name, owner_rank, segment_id, shm, owned=True)

    @classmethod
    def attach(cls, name: str, owner_rank: int, segment_id: int) -> "_SegmentBlock":
        # Attach registrations are harmless here: every rank process is
        # forked after the world's control block started the resource
        # tracker, so all ranks share one tracker whose per-name set
        # deduplicates them; the owner's unlink clears the single entry.
        shm = shared_memory.SharedMemory(name=name, create=False)
        block = cls(name, owner_rank, segment_id, shm, owned=False)
        if not block.valid:
            block.release()
            raise GaspiSegmentError(
                f"rank {owner_rank}'s segment {segment_id} was deleted"
            )
        return block

    # ------------------------------------------------------------------ #
    @property
    def valid(self) -> bool:
        return bool(self.header[_H_VALID] == 1)

    def check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.size:
            raise GaspiSegmentError(
                f"byte range [{offset}, {offset + size}) outside segment "
                f"{self.segment_id} of {self.size} bytes"
            )

    def check_notification(self, notification_id: int) -> None:
        if not (0 <= notification_id < self.num_notifications):
            raise GaspiInvalidArgumentError(
                f"notification id {notification_id} outside "
                f"[0, {self.num_notifications})"
            )

    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Drop the NumPy views and unmap (never raises)."""
        self.header = self.notif = self.data = None  # release exported buffers
        _quiet_close(self.shm)

    def destroy(self) -> None:
        """Owner-side teardown: invalidate, unmap and unlink."""
        if self.header is not None:
            self.header[_H_VALID] = 0
        self.release()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass


class ShmWorld:
    """Shared state of a process-per-rank GASPI world.

    Create the world *before* forking the rank processes (``fork`` start
    method): the control block, the lock stripes and the notification
    condition variable are inherited by every child.  :func:`run_shm`
    does exactly this; tests can also drive a world manually.
    """

    def __init__(
        self,
        size: int,
        config: Optional[ShmConfig] = None,
        uid: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise GaspiInvalidArgumentError(f"world size must be positive, got {size}")
        self.size = int(size)
        self.config = config or ShmConfig()
        self.uid = uid or f"repro-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self._ctx = multiprocessing.get_context("fork")
        ctl_bytes = _BARRIER_SLOTS * _BARRIER_FIELDS * 8
        self._ctl = shared_memory.SharedMemory(
            name=f"{self.uid}-ctl", create=True, size=ctl_bytes
        )
        self._barrier_table = np.frombuffer(self._ctl.buf, dtype=np.int64)
        self._atomic_lock = self._ctx.Lock()
        self._segment_locks = tuple(
            self._ctx.Lock() for _ in range(_SEGMENT_LOCK_STRIPES)
        )
        self._notify_cond = self._ctx.Condition()
        self._notify_waiters = self._ctx.RawValue("i", 0)
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def ctx(self):
        """The (fork) multiprocessing context of this world."""
        return self._ctx

    def runtime(self, rank: int) -> "ShmRuntime":
        """Per-rank runtime facade (construct inside the rank's process)."""
        if not (0 <= rank < self.size):
            raise GaspiInvalidArgumentError(
                f"rank {rank} outside world of size {self.size}"
            )
        return ShmRuntime(self, rank)

    def segment_name(self, rank: int, segment_id: int) -> str:
        return f"{self.uid}-r{rank}-s{segment_id}"

    def segment_lock(self, owner_rank: int, segment_id: int):
        return self._segment_locks[_segment_lock_index(owner_rank, segment_id)]

    # ------------------------------------------------------------------ #
    # notification wake-up (busy-wait/condvar hybrid, posting side)
    # ------------------------------------------------------------------ #
    def wake_waiters(self) -> None:
        """Signal parked waiters; a no-op while nobody is registered."""
        if self._notify_waiters.value:
            with self._notify_cond:
                self._notify_cond.notify_all()

    def hybrid_wait(self, poll: Callable[[], Any], timeout: float):
        """Run ``poll`` until it returns non-``None`` or ``timeout`` expires.

        Phase one yield-polls ``config.spin`` times — the notification is
        usually either already there or one scheduling quantum away on a
        loaded host.  Phase two registers as a waiter and parks on the
        shared condition variable in ``wait_slice`` bites (the slice
        bounds the race of a post landing between the poster's waiter
        check and this waiter's registration).
        """
        hit = poll()
        if hit is not None:
            return hit
        if timeout == 0.0:
            return None
        deadline = None if timeout == GASPI_BLOCK else time.monotonic() + timeout
        for _ in range(self.config.spin):
            os.sched_yield()
            hit = poll()
            if hit is not None:
                return hit
            if deadline is not None and time.monotonic() >= deadline:
                return None
        cond = self._notify_cond
        waiters = self._notify_waiters
        with cond:
            waiters.value += 1
            try:
                while True:
                    hit = poll()
                    if hit is not None:
                        return hit
                    slice_ = self.config.wait_slice
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return None
                        slice_ = min(slice_, remaining)
                    cond.wait(slice_)
            finally:
                waiters.value -= 1

    # ------------------------------------------------------------------ #
    # barrier slots
    # ------------------------------------------------------------------ #
    def barrier_slot(self, group: Group) -> int:
        """Find or claim the barrier slot of a group (deterministic).

        Every rank computes the same key from the member set and probes
        the shared table in the same order under the atomic lock, so all
        members agree on the slot without any out-of-band exchange.
        """
        key = _group_key(group)
        table = self._barrier_table
        with self._atomic_lock:
            for probe in range(_BARRIER_SLOTS):
                base = ((key + probe) % _BARRIER_SLOTS) * _BARRIER_FIELDS
                slot_key = int(table[base])
                if slot_key == key:
                    return base
                if slot_key == 0:
                    table[base] = key
                    return base
        raise GaspiResourceError(
            f"barrier table exhausted ({_BARRIER_SLOTS} distinct groups)"
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def leaked_blocks(self) -> List[str]:
        """Names of this world's shared-memory blocks still in ``/dev/shm``.

        The control block is excluded — it lives for the world's whole
        lifetime and is unlinked by :meth:`close`.
        """
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
            return []
        prefix = self.uid
        return sorted(
            name
            for name in os.listdir(shm_dir)
            if name.startswith(prefix) and not name.endswith("-ctl")
        )

    def stale_segments(self, rank: int) -> List[int]:
        """Segment ids of ``rank``'s blocks still present in ``/dev/shm``.

        After a rank process dies hard its owned blocks persist under
        their deterministic names; a replacement process lists them here
        to decide what to adopt (:meth:`ShmRuntime.adopt_segment`) and
        what to discard (:meth:`unlink_segment`).
        """
        prefix = f"{self.uid}-r{int(rank)}-s"
        ids: List[int] = []
        for name in self.leaked_blocks():
            if not name.startswith(prefix):
                continue
            try:
                ids.append(int(name[len(prefix):]))
            except ValueError:  # pragma: no cover - foreign name collision
                continue
        return sorted(ids)

    def unlink_segment(self, rank: int, segment_id: int) -> bool:
        """Unlink one dead rank's leftover block; True if it existed.

        Invalidates the header first so peers holding a cached attachment
        observe the deletion, exactly as the owner's ``segment_delete``
        would have.
        """
        name = self.segment_name(int(rank), int(segment_id))
        try:
            stale = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            return False
        try:
            header = np.frombuffer(stale.buf, dtype=np.int64, count=_HEADER_SLOTS)
            header[_H_VALID] = 0
            del header
        except (ValueError, IndexError):  # pragma: no cover - truncated block
            pass
        _quiet_close(stale)
        try:
            stale.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            return False
        return True

    def sweep(self) -> List[str]:
        """Unlink any leaked segment blocks; returns their names."""
        leaked = self.leaked_blocks()
        for name in leaked:
            try:
                stale = shared_memory.SharedMemory(name=name, create=False)
                stale.close()
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - raced cleanup
                pass
        return leaked

    def close(self) -> None:
        """Unlink the control block and sweep leftovers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.sweep()
        self._barrier_table = None
        _quiet_close(self._ctl)
        try:
            self._ctl.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def __enter__(self) -> "ShmWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShmRuntime(GaspiRuntime):
    """Per-rank facade over an :class:`ShmWorld` (one process per rank)."""

    def __init__(self, world: ShmWorld, rank: int) -> None:
        self._world = world
        self._rank = int(rank)
        self._local: Dict[int, _SegmentBlock] = {}
        self._remote: Dict[Tuple[int, int], _SegmentBlock] = {}
        self._barrier_slots: Dict[Group, int] = {}
        self.stats = TrafficStats()

    # -- identity ------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    @property
    def world(self) -> ShmWorld:
        """The shared world this runtime belongs to."""
        return self._world

    # -- segments ------------------------------------------------------- #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        if size <= 0:
            raise GaspiInvalidArgumentError(f"segment size must be > 0, got {size}")
        if segment_id < 0:
            raise GaspiInvalidArgumentError(
                f"segment id must be non-negative, got {segment_id}"
            )
        if num_notifications <= 0:
            raise GaspiInvalidArgumentError(
                "notification board needs at least one slot, "
                f"got {num_notifications}"
            )
        if segment_id in self._local:
            raise GaspiResourceError(
                f"rank {self._rank}: segment {segment_id} already exists"
            )
        if len(self._local) >= self._world.config.max_segments:
            raise GaspiResourceError(
                f"rank {self._rank}: segment limit "
                f"{self._world.config.max_segments} reached"
            )
        self._local[segment_id] = _SegmentBlock.create(
            self._world.segment_name(self._rank, segment_id),
            self._rank,
            segment_id,
            int(size),
            int(num_notifications),
        )

    def adopt_segment(self, segment_id: int) -> Dict[int, int]:
        """Re-attach a dead predecessor's block as this rank's own segment.

        A respawned rank inherits the shared-memory block its previous
        incarnation left behind in ``/dev/shm`` (same deterministic name,
        since names key on rank and segment id, not process identity):
        the block is mapped, the header word re-validated, and any stale
        notifications the survivors posted at the dead incarnation are
        drained under the segment lock.  Returns the drained
        ``{notification_id: value}`` map — the survivors' contributions
        are still in the data bytes, but the replacement re-drives the
        exchange itself, so leftover arrival flags must not be mistaken
        for fresh ones.

        Raises :class:`GaspiSegmentError` when no such block exists (the
        predecessor never created it, or it was swept) and
        :class:`GaspiResourceError` on a duplicate id or segment-limit
        breach, mirroring :meth:`segment_create`.
        """
        segment_id = int(segment_id)
        if segment_id in self._local:
            raise GaspiResourceError(
                f"rank {self._rank}: segment {segment_id} already exists"
            )
        if len(self._local) >= self._world.config.max_segments:
            raise GaspiResourceError(
                f"rank {self._rank}: segment limit "
                f"{self._world.config.max_segments} reached"
            )
        name = self._world.segment_name(self._rank, segment_id)
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError as exc:
            raise GaspiSegmentError(
                f"rank {self._rank}: no leftover block to adopt for "
                f"segment {segment_id}"
            ) from exc
        block = _SegmentBlock(name, self._rank, segment_id, shm, owned=True)
        if not block.valid:
            block.release()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - raced cleanup
                pass
            raise GaspiSegmentError(
                f"rank {self._rank}: leftover segment {segment_id} was "
                f"invalidated before adoption"
            )
        with self._world.segment_lock(self._rank, segment_id):
            pending = np.flatnonzero(block.notif > 0)
            drained = {int(i): int(block.notif[i]) for i in pending}
            block.notif[pending] = 0
        self._local[segment_id] = block
        return drained

    def segment_delete(self, segment_id: int) -> None:
        block = self._local.pop(segment_id, None)
        if block is None:
            raise GaspiSegmentError(
                f"rank {self._rank}: cannot delete unknown segment {segment_id}"
            )
        block.destroy()

    def segment_view(
        self,
        segment_id: int,
        dtype=np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        block = self._local_segment(segment_id)
        dtype = np.dtype(dtype)
        if offset < 0 or offset > block.size:
            raise GaspiSegmentError(
                f"offset {offset} outside segment of {block.size} bytes"
            )
        avail = block.size - offset
        if count is None:
            count = avail // dtype.itemsize
        nbytes = count * dtype.itemsize
        if nbytes > avail:
            raise GaspiSegmentError(
                f"requested {nbytes} bytes at offset {offset} but only "
                f"{avail} bytes remain in segment {segment_id}"
            )
        return block.data[offset : offset + nbytes].view(dtype)

    def segment_size(self, segment_id: int) -> int:
        return self._local_segment(segment_id).size

    def segment_read(
        self,
        segment_id: int,
        dtype=np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        dtype = np.dtype(dtype)
        block = self._local_segment(segment_id)
        if count is None:
            count = (block.size - offset) // dtype.itemsize
        nbytes = count * dtype.itemsize
        block.check_range(offset, nbytes)
        # Snapshot under the segment's write lock, so a half-applied
        # remote write (the SSP mailbox race) is never observed.
        with self._world.segment_lock(self._rank, segment_id):
            raw = block.data[offset : offset + nbytes].copy()
        return raw.view(dtype)

    # -- one-sided communication ---------------------------------------- #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        self._check_target(target_rank)
        self._check_queue(queue)
        source = self._read_local(segment_id_local, offset_local, size)
        self._apply_write(target_rank, segment_id_remote, offset_remote, source)
        if self._world.config.collect_stats:
            self.stats.record_send(target_rank, size, notified=False)

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._check_target(target_rank)
        self._check_queue(queue)
        self._apply_notify(
            target_rank, segment_id_remote, notification_id, notification_value
        )
        if self._world.config.collect_stats:
            self.stats.record_send(target_rank, 0, notified=True)

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._check_target(target_rank)
        self._check_queue(queue)
        source = self._read_local(segment_id_local, offset_local, size)
        value = int(notification_value)
        if value <= 0:
            raise GaspiInvalidArgumentError(
                f"notification values must be > 0, got {value}"
            )
        block = self._segment_of(target_rank, segment_id_remote)
        block.check_range(offset_remote, source.size)
        block.check_notification(notification_id)
        # Data first, then the notification, inside ONE critical section
        # (this is the hottest protocol op — one lock round-trip, not
        # two); the lock release orders the stores, so the GASPI
        # visibility guarantee holds even under weak memory ordering.
        with self._world.segment_lock(target_rank, segment_id_remote):
            if source.size:
                block.data[offset_remote : offset_remote + source.size] = source
            block.notif[notification_id] = value
            block.header[_H_POSTED] += 1
        self._world.wake_waiters()
        if self._world.config.collect_stats:
            self.stats.record_send(target_rank, size, notified=True)

    def _apply_write(
        self, target_rank: int, segment_id: int, offset: int, source: np.ndarray
    ) -> None:
        block = self._segment_of(target_rank, segment_id)
        block.check_range(offset, source.size)
        if source.size:
            with self._world.segment_lock(target_rank, segment_id):
                block.data[offset : offset + source.size] = source

    def _apply_notify(
        self, target_rank: int, segment_id: int, notification_id: int, value: int
    ) -> None:
        value = int(value)
        if value <= 0:
            raise GaspiInvalidArgumentError(
                f"notification values must be > 0, got {value}"
            )
        block = self._segment_of(target_rank, segment_id)
        block.check_notification(notification_id)
        with self._world.segment_lock(target_rank, segment_id):
            block.notif[notification_id] = value
            block.header[_H_POSTED] += 1
        self._world.wake_waiters()

    # -- weak synchronisation ------------------------------------------- #
    def _notification_window(
        self, segment_id: int, begin: int, count: Optional[int]
    ) -> Tuple[_SegmentBlock, int, int]:
        block = self._local_segment(segment_id)
        if count is None:
            count = block.num_notifications - begin
        if count <= 0:
            raise GaspiInvalidArgumentError(f"count must be positive, got {count}")
        block.check_notification(begin)
        block.check_notification(begin + count - 1)
        return block, begin, count

    @staticmethod
    def _first_pending(values: np.ndarray, begin: int, count: int) -> Optional[int]:
        if count == 1:  # the common "wait for this one id" fast path
            return begin if values[begin] > 0 else None
        hits = np.flatnonzero(values[begin : begin + count] > 0)
        return int(begin + hits[0]) if hits.size else None

    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        block, begin, count = self._notification_window(
            segment_id_local, notification_begin, notification_count
        )
        values = block.notif
        return self._world.hybrid_wait(
            lambda: self._first_pending(values, begin, count), timeout
        )

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        block = self._local_segment(segment_id_local)
        block.check_notification(notification_id)
        with self._world.segment_lock(self._rank, segment_id_local):
            old = int(block.notif[notification_id])
            block.notif[notification_id] = 0
        return old

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        block = self._local_segment(segment_id_local)
        block.check_notification(notification_id)
        return int(block.notif[notification_id])

    def notify_probe(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> bool:
        block, begin, count = self._notification_window(
            segment_id_local, notification_begin, notification_count
        )
        values = block.notif
        if count == 1:
            return bool(values[begin] > 0)
        return bool(values[begin : begin + count].max(initial=0) > 0)

    def notify_drain(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> Dict[int, int]:
        block, begin, count = self._notification_window(
            segment_id_local, notification_begin, notification_count
        )
        end = begin + count
        with self._world.segment_lock(self._rank, segment_id_local):
            window = block.notif[begin:end]
            pending = np.flatnonzero(window > 0)
            hits = {int(begin + i): int(window[i]) for i in pending}
            window[pending] = 0
        return hits

    # -- queues / barriers ----------------------------------------------- #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        # Writes apply synchronously in the posting process (immediate
        # delivery, like the threaded world's default mode); a queue
        # flush has nothing left to wait for.
        self._check_queue(queue)

    def barrier(
        self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK
    ) -> None:
        group = group or self.group_all
        if not group.contains(self._rank):
            raise GaspiInvalidArgumentError(
                f"rank {self._rank} called barrier on group {group} "
                f"it is not part of"
            )
        if group.size > 1:
            self._counter_barrier(group, timeout)
        if self._world.config.collect_stats:
            self.stats.barriers += 1

    def _counter_barrier(self, group: Group, timeout: float) -> None:
        """Sense-reversing counter barrier with broken-barrier semantics.

        The classic two-state sense is generalised to a monotonic round
        number (the sense is the round's parity): arrivals join the
        current round, the last one resets the counter and advances the
        round, which releases every waiter.

        A waiter that exhausts a finite timeout marks the round *broken*;
        every other waiter of the round observes the mark and fails the
        same way (the cross-process analogue of a broken
        ``threading.Barrier``), and the last one to leave retires the
        round by advancing the round number.  New arrivals never join a
        broken round — they wait for it to drain first — so a rank that
        re-enters the barrier right after its timeout cannot cascade the
        breakage into the next round.
        """
        slot = self._barrier_slots.get(group)
        if slot is None:
            slot = self._world.barrier_slot(group)
            self._barrier_slots[group] = slot
        table = self._world._barrier_table
        lock = self._world._atomic_lock
        count_i, round_i, broken_i = slot + 1, slot + 2, slot + 3
        deadline = None if timeout == GASPI_BLOCK else time.monotonic() + timeout

        # Join a round, waiting out a draining broken round if needed.
        while True:
            with lock:
                my_round = int(table[round_i])
                if int(table[broken_i]) != my_round + 1:
                    arrived = int(table[count_i]) + 1
                    if arrived == group.size:
                        table[count_i] = 0
                        table[round_i] = my_round + 1  # releases every waiter
                        released = True
                    else:
                        table[count_i] = arrived
                        released = False
                    break
            if deadline is not None and time.monotonic() >= deadline:
                raise GaspiTimeoutError(
                    f"barrier over {group} timed out after {timeout} s "
                    f"(previous broken round still draining)"
                )
            os.sched_yield()
        if released:
            self._world.wake_waiters()
            return

        def poll() -> Optional[int]:
            if int(table[round_i]) > my_round:
                return 1
            if int(table[broken_i]) == my_round + 1:
                return 2
            return None

        outcome = self._world.hybrid_wait(poll, timeout)
        if outcome == 1:
            return
        with lock:
            if int(table[round_i]) > my_round:
                return  # released while we were timing out
            # ``broken_round + 1`` so round 0 is distinguishable from
            # "no broken round" (slot memory starts zeroed).
            table[broken_i] = my_round + 1
            remaining = int(table[count_i]) - 1
            table[count_i] = remaining
            if remaining <= 0:  # last leaver retires the broken round
                table[count_i] = 0
                table[round_i] = my_round + 1
                table[broken_i] = 0
        self._world.wake_waiters()
        raise GaspiTimeoutError(
            f"barrier over {group} timed out after {timeout} s"
        )

    # -- atomics ---------------------------------------------------------- #
    def atomic_fetch_add(
        self,
        segment_id: int,
        offset: int,
        target_rank: int,
        value: int,
    ) -> int:
        self._check_target(target_rank)
        block = self._segment_of(target_rank, segment_id)
        block.check_range(offset, 8)
        slot = block.data[offset : offset + 8].view(np.int64)
        with self._world._atomic_lock:
            old = int(slot[0])
            slot[0] = old + int(value)
        return old

    # -- internals -------------------------------------------------------- #
    def _local_segment(self, segment_id: int) -> _SegmentBlock:
        block = self._local.get(segment_id)
        if block is None:
            raise GaspiSegmentError(
                f"rank {self._rank} has no segment with id {segment_id}"
            )
        return block

    def _segment_of(self, target_rank: int, segment_id: int) -> _SegmentBlock:
        if target_rank == self._rank:
            return self._local_segment(segment_id)
        key = (target_rank, segment_id)
        block = self._remote.get(key)
        if block is not None:
            if block.valid:
                return block
            # The owner deleted (and possibly recreated) the segment:
            # drop the stale mapping and re-attach by name.
            self._remote.pop(key).release()
        try:
            block = _SegmentBlock.attach(
                self._world.segment_name(target_rank, segment_id),
                target_rank,
                segment_id,
            )
        except FileNotFoundError as exc:
            raise GaspiSegmentError(
                f"rank {target_rank} has no segment with id {segment_id}"
            ) from exc
        self._remote[key] = block
        return block

    def _read_local(self, segment_id: int, offset: int, size: int) -> np.ndarray:
        # Zero-copy view of the posting rank's own segment, mirroring
        # ThreadedRuntime._read_local: GASPI requires the source region
        # to stay stable until wait(), and writes apply synchronously
        # here, so the view is consumed before this call returns.
        block = self._local_segment(segment_id)
        block.check_range(offset, size)
        return block.data[offset : offset + size]

    def _check_target(self, target_rank: int) -> None:
        if not (0 <= target_rank < self._world.size):
            raise GaspiInvalidArgumentError(
                f"target rank {target_rank} outside world of size {self._world.size}"
            )

    def _check_queue(self, queue: int) -> None:
        if not (0 <= queue < self._world.config.queue_count):
            raise GaspiInvalidArgumentError(
                f"rank {self._rank} has no queue {queue} "
                f"(queue_count={self._world.config.queue_count})"
            )

    # -- lifecycle -------------------------------------------------------- #
    def close(self) -> None:
        """Release every mapping this rank holds (idempotent).

        Owned segments are invalidated and unlinked; remote attachments
        are merely unmapped — their owners unlink them.  Call this before
        the rank process exits so no shared-memory block outlives the
        world (:func:`run_shm` does it in a ``finally``).
        """
        for key in list(self._remote):
            self._remote.pop(key).release()
        for segment_id in list(self._local):
            self._local.pop(segment_id).destroy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShmRuntime(rank={self._rank}, size={self.size})"


# --------------------------------------------------------------------------- #
# SPMD launcher over processes
# --------------------------------------------------------------------------- #
def _picklable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _shm_child_main(world: ShmWorld, rank: int, fn, args, kwargs, conn) -> None:
    """Entry point of one rank process (inherits everything via fork)."""
    # The child's copy of the control block dies with the process; its
    # barrier-table view keeps the buffer exported, so a garbage-collected
    # close would only print an ignored BufferError.  Only the parent
    # closes and unlinks the control block.
    world._ctl.close = lambda: None
    runtime = world.runtime(rank)
    try:
        try:
            payload: Tuple[Any, ...] = ("ok", fn(runtime, *args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            payload = ("err", _picklable_exception(exc), traceback.format_exc())
    finally:
        runtime.close()
    try:
        conn.send(payload)
    except Exception as exc:  # result not picklable, broken pipe, ...
        try:
            conn.send(
                ("err", RuntimeError(f"rank {rank} could not ship its result: {exc}"), "")
            )
        except Exception:  # pragma: no cover - parent is gone
            pass
    conn.close()


def run_shm(
    num_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    config: Optional[ShmConfig] = None,
    timeout: Optional[float] = 120.0,
    warn_leaks: bool = True,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(runtime, *args, **kwargs)`` on ``num_ranks`` rank *processes*.

    The process-world analogue of :func:`~repro.gaspi.spmd.run_spmd`:
    one forked OS process per rank, each with an :class:`ShmRuntime`
    whose segments live in POSIX shared memory, so ranks run truly in
    parallel (no shared GIL).  Per-rank return values are shipped back
    over pipes (they must be picklable); exceptions are collected and
    re-raised as :class:`~repro.gaspi.spmd.SpmdError`, and a rank that
    exceeds ``timeout`` is terminated and reported the same way.

    After the ranks exit, any shared-memory block they leaked (e.g. a
    crashed rank that never reached its cleanup) is unlinked; with
    ``warn_leaks`` a :class:`ResourceWarning` names the swept blocks, so
    tests can assert clean teardown.
    """
    if num_ranks <= 0:
        raise ValueError(f"num_ranks must be positive, got {num_ranks}")
    world = ShmWorld(num_ranks, config)
    ctx = world.ctx
    results: List[Any] = [None] * num_ranks
    failures: List[tuple] = []
    stuck: List[int] = []
    procs = []
    try:
        channels = [ctx.Pipe(duplex=False) for _ in range(num_ranks)]
        procs = [
            ctx.Process(
                target=_shm_child_main,
                args=(world, rank, fn, args, kwargs, channels[rank][1]),
                name=f"gaspi-shm-rank-{rank}",
                daemon=True,
            )
            for rank in range(num_ranks)
        ]
        for proc in procs:
            proc.start()
        for _, child_end in channels:
            child_end.close()  # the parent only reads
        deadline = None if timeout is None else time.monotonic() + timeout
        for rank, (parent_end, _) in enumerate(channels):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                ready = parent_end.poll(remaining)
            except (EOFError, OSError):
                ready = False
            if not ready:
                stuck.append(rank)
                continue
            try:
                payload = parent_end.recv()
            except (EOFError, OSError):
                failures.append(
                    (
                        rank,
                        RuntimeError(
                            f"rank {rank} exited without reporting a result "
                            "(killed or crashed hard?)"
                        ),
                        "",
                    )
                )
                continue
            if payload[0] == "ok":
                results[rank] = payload[1]
            else:
                failures.append((rank, payload[1], payload[2]))
        for rank, proc in enumerate(procs):
            proc.join(0.0 if rank in stuck else 5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
    finally:
        leaked = world.leaked_blocks()
        world.close()
        if leaked and warn_leaks and not stuck:
            warnings.warn(
                f"run_shm swept {len(leaked)} leaked shared-memory "
                f"block(s): {leaked}",
                ResourceWarning,
                stacklevel=2,
            )
    if stuck:
        raise SpmdError(
            [
                (
                    rank,
                    TimeoutError(
                        f"rank {rank} did not finish within {timeout} s "
                        "(deadlocked collective?)"
                    ),
                    "",
                )
                for rank in stuck
            ]
            + failures
        )
    if failures:
        failures.sort(key=lambda item: item[0])
        raise SpmdError(failures)
    return results
