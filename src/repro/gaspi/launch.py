"""Backend-agnostic SPMD launcher: one entry point, two substrates.

Every layer above the runtime — :class:`~repro.core.api.Communicator`,
the plan cache, the progress engine, the fault wrappers — is written
against the abstract :class:`~repro.gaspi.runtime.GaspiRuntime`, so the
*only* backend-specific choice an application makes is how the rank
world is launched:

* ``backend="threaded"`` — thread-per-rank inside one process
  (:func:`~repro.gaspi.spmd.run_spmd`): fastest startup, deterministic,
  but every rank shares the GIL.
* ``backend="shm"`` — process-per-rank over POSIX shared memory
  (:func:`~repro.gaspi.shm.run_shm`): true parallelism, the closest
  analogue to GPI-2 segments.

::

    from repro import Communicator, run_backend

    def worker(runtime):
        comm = Communicator(runtime)
        try:
            return comm.allreduce(np.ones(1024))
        finally:
            comm.close()

    results = run_backend(4, worker, backend="shm")
"""

from __future__ import annotations

from typing import Any, Callable, List

from .errors import GaspiInvalidArgumentError
from .shm import run_shm
from .spmd import run_spmd

#: Launchable rank-world substrates (the simulator is not an SPMD world:
#: it replays schedules through ``Communicator(machine=...)`` instead).
BACKENDS = ("threaded", "shm")


def run_backend(
    num_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    backend: str = "threaded",
    timeout: float | None = 120.0,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(runtime, *args, **kwargs)`` on ``num_ranks`` ranks.

    Dispatches to :func:`~repro.gaspi.spmd.run_spmd` (threads) or
    :func:`~repro.gaspi.shm.run_shm` (processes) and returns the per-rank
    results, indexed by rank.  Backend-specific keyword arguments
    (``world_config`` for threaded, ``config``/``warn_leaks`` for shm)
    pass straight through.
    """
    if backend == "threaded":
        return run_spmd(num_ranks, fn, *args, timeout=timeout, **kwargs)
    if backend == "shm":
        return run_shm(num_ranks, fn, *args, timeout=timeout, **kwargs)
    raise GaspiInvalidArgumentError(
        f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
    )
