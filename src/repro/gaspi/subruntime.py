"""Group-scoped view of a GASPI runtime (the substrate of sub-communicators).

A :class:`GroupRuntime` wraps any :class:`~repro.gaspi.runtime.GaspiRuntime`
and renumbers a subset of its ranks ``0 .. len(members)-1``.  Every
collective in :mod:`repro.core` is written against ``runtime.rank`` /
``runtime.size`` and posts one-sided operations to *rank numbers*, so
running it on a :class:`GroupRuntime` transparently scopes it to the
member subset: target ranks are translated on the way out, barriers are
taken over the member group only, and segment/notification operations —
which are local in GASPI — pass straight through.

Wrappers nest: splitting a sub-communicator wraps its (already wrapped)
runtime again, so each level only reasons about its parent's numbering.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .constants import (
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    GASPI_BLOCK,
)
from .errors import GaspiInvalidArgumentError
from .group import Group
from .runtime import GaspiRuntime


class GroupRuntime(GaspiRuntime):
    """A rank-subset view onto a base runtime.

    Parameters
    ----------
    base:
        The wrapped runtime (the world, or another :class:`GroupRuntime`).
    members:
        Base-runtime ranks belonging to this group, **in group-rank
        order** (position ``i`` becomes group rank ``i``; the order may
        deviate from the sorted one when a split reorders ranks by key).
        Must contain ``base.rank`` and must be duplicate-free.
    """

    def __init__(self, base: GaspiRuntime, members: Sequence[int]) -> None:
        members = [int(m) for m in members]
        if len(set(members)) != len(members):
            raise GaspiInvalidArgumentError(f"duplicate ranks in group: {members}")
        for m in members:
            if not (0 <= m < base.size):
                raise GaspiInvalidArgumentError(
                    f"group member {m} outside base world of size {base.size}"
                )
        if base.rank not in members:
            raise GaspiInvalidArgumentError(
                f"rank {base.rank} constructed a GroupRuntime it is not part of "
                f"(members: {members})"
            )
        self._base = base
        self._members = tuple(members)
        self._rank = members.index(base.rank)
        self._base_group = Group(members)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def base(self) -> GaspiRuntime:
        """The wrapped runtime."""
        return self._base

    @property
    def members(self) -> Sequence[int]:
        """Base-runtime ranks of the group, indexed by group rank."""
        return self._members

    @property
    def fault_injected(self) -> bool:
        return self._base.fault_injected

    @property
    def telemetry(self):
        # Forwarded so a split() communicator sharing the parent's registry
        # is detected upstream and not wrapped (and counted) a second time.
        return getattr(self._base, "telemetry", None)

    def to_base_rank(self, group_rank: int) -> int:
        """Translate a group rank to the base runtime's numbering."""
        try:
            return self._members[group_rank]
        except IndexError as exc:
            raise GaspiInvalidArgumentError(
                f"group rank {group_rank} outside group of size {self.size}"
            ) from exc

    def from_base_rank(self, base_rank: int) -> Optional[int]:
        """Group rank of a base-runtime rank, or ``None`` if not a member.

        The inverse of :meth:`to_base_rank`; elastic shrink uses it to
        remap suspicion expressed in parent numbering onto survivors.
        """
        try:
            return self._members.index(int(base_rank))
        except ValueError:
            return None

    def _translate_group(self, group: Optional[Group]) -> Group:
        """Map a group expressed in group-local ranks to base ranks."""
        if group is None:
            return self._base_group
        return Group(self.to_base_rank(r) for r in group.ranks)

    # ------------------------------------------------------------------ #
    # segments (local in GASPI: pass through)
    # ------------------------------------------------------------------ #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        self._base.segment_create(segment_id, size, num_notifications)

    def segment_delete(self, segment_id: int) -> None:
        self._base.segment_delete(segment_id)

    def segment_bind(self, segment_id: int, array: np.ndarray) -> None:
        self._base.segment_bind(segment_id, array)

    @property
    def supports_bind(self) -> bool:
        return self._base.supports_bind

    def segment_view(
        self, segment_id: int, dtype=np.float64, offset: int = 0, count=None
    ) -> np.ndarray:
        return self._base.segment_view(segment_id, dtype=dtype, offset=offset, count=count)

    def segment_size(self, segment_id: int) -> int:
        return self._base.segment_size(segment_id)

    def segment_read(
        self, segment_id: int, dtype=np.float64, offset: int = 0, count=None
    ) -> np.ndarray:
        return self._base.segment_read(segment_id, dtype=dtype, offset=offset, count=count)

    # ------------------------------------------------------------------ #
    # one-sided communication (translate the target rank)
    # ------------------------------------------------------------------ #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        self._base.write(
            segment_id_local,
            offset_local,
            self.to_base_rank(target_rank),
            segment_id_remote,
            offset_remote,
            size,
            queue=queue,
        )

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._base.notify(
            self.to_base_rank(target_rank),
            segment_id_remote,
            notification_id,
            notification_value,
            queue=queue,
        )

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._base.write_notify(
            segment_id_local,
            offset_local,
            self.to_base_rank(target_rank),
            segment_id_remote,
            offset_remote,
            size,
            notification_id,
            notification_value,
            queue=queue,
        )

    # ------------------------------------------------------------------ #
    # weak synchronisation (local: pass through)
    # ------------------------------------------------------------------ #
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count=None,
        timeout: float = GASPI_BLOCK,
    ):
        return self._base.notify_waitsome(
            segment_id_local, notification_begin, notification_count, timeout
        )

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        return self._base.notify_reset(segment_id_local, notification_id)

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        return self._base.notify_peek(segment_id_local, notification_id)

    def notify_drain(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count=None,
    ):
        return self._base.notify_drain(
            segment_id_local, notification_begin, notification_count
        )

    # ------------------------------------------------------------------ #
    # queues / barrier / atomics
    # ------------------------------------------------------------------ #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        self._base.wait(queue, timeout)

    def barrier(self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK) -> None:
        self._base.barrier(self._translate_group(group), timeout=timeout)

    def atomic_fetch_add(
        self, segment_id: int, offset: int, target_rank: int, value: int
    ) -> int:
        return self._base.atomic_fetch_add(
            segment_id, offset, self.to_base_rank(target_rank), value
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupRuntime(rank={self._rank}/{self.size}, "
            f"members={list(self._members)}, base={self._base!r})"
        )
