"""Constants mirroring the GASPI specification / GPI-2 header values.

Only the subset required by the collectives in this repository is
provided, with the same meaning as in the GASPI standard:

* ``GASPI_BLOCK`` — block until the operation completes.
* ``GASPI_TEST`` — return immediately (poll once).
* ``GASPI_GROUP_ALL`` — the implicit group containing every rank.
"""

from __future__ import annotations

#: Block until the requested condition is satisfied (infinite timeout).
GASPI_BLOCK: float = float("inf")

#: Non-blocking probe: check once and return immediately.
GASPI_TEST: float = 0.0

#: Identifier of the implicit group that contains all ranks.
GASPI_GROUP_ALL: int = 0

#: Number of notification slots available per segment.  GPI-2 provides
#: 65536 per segment; we default to a smaller, configurable number that is
#: still far larger than what any collective in this repository uses.
DEFAULT_NOTIFICATION_COUNT: int = 65536

#: Number of communication queues available to each rank.
DEFAULT_QUEUE_COUNT: int = 8

#: Maximum number of outstanding (not yet waited-for) requests per queue.
#: GPI-2 exposes a similar per-queue depth limit; exceeding it raises
#: :class:`repro.gaspi.errors.GaspiQueueFullError`.
DEFAULT_QUEUE_DEPTH: int = 4096

#: Upper bound on the number of memory segments per rank (GPI-2 uses 32 by
#: default; we are more generous because the SSP allreduce keeps one mailbox
#: region per hypercube dimension).
DEFAULT_MAX_SEGMENTS: int = 256

#: Notification value used to signal "data arrived" when the caller does not
#: provide an explicit value.  GASPI requires notification values > 0.
DEFAULT_NOTIFICATION_VALUE: int = 1
