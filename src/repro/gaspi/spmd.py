"""SPMD launcher: run one callable per rank on a threaded GASPI world.

``run_spmd(n, fn)`` is the in-process analogue of ``mpiexec -n <n>`` /
``gaspi_run``: it creates a :class:`~repro.gaspi.threaded.ThreadedWorld`,
spawns one thread per rank, calls ``fn(runtime, *args, **kwargs)`` on each
and returns the list of per-rank return values.  Exceptions raised by any
rank are collected and re-raised as :class:`SpmdError` so a hanging
collective shows up as a test failure rather than a deadlock.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, List, Optional, Sequence

from .errors import GaspiError
from .threaded import ThreadedRuntime, ThreadedWorld, WorldConfig


class SpmdError(GaspiError):
    """One or more ranks raised inside :func:`run_spmd`.

    Attributes
    ----------
    failures:
        List of ``(rank, exception, formatted_traceback)`` tuples.
    """

    def __init__(self, failures: Sequence[tuple]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} rank(s) failed inside run_spmd:"]
        for rank, exc, tb in self.failures:
            lines.append(f"--- rank {rank}: {type(exc).__name__}: {exc}\n{tb}")
        super().__init__("\n".join(lines))


def run_spmd(
    num_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    world_config: Optional[WorldConfig] = None,
    timeout: Optional[float] = 120.0,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(runtime, *args, **kwargs)`` on ``num_ranks`` rank threads.

    Parameters
    ----------
    num_ranks:
        Number of ranks (threads) to spawn.
    fn:
        Per-rank entry point; receives a
        :class:`~repro.gaspi.threaded.ThreadedRuntime` as its first argument.
    world_config:
        Optional :class:`~repro.gaspi.threaded.WorldConfig`.
    timeout:
        Wall-clock limit in seconds for the whole SPMD region.  ``None``
        disables the limit.  A timeout usually indicates a deadlocked
        collective; the error message lists which ranks had not finished.

    Returns
    -------
    list
        ``fn``'s return value for each rank, indexed by rank.
    """
    if num_ranks <= 0:
        raise ValueError(f"num_ranks must be positive, got {num_ranks}")

    world = ThreadedWorld(num_ranks, world_config)
    results: List[Any] = [None] * num_ranks
    failures: List[tuple] = []
    failures_lock = threading.Lock()

    def worker(rank: int, runtime: ThreadedRuntime) -> None:
        try:
            results[rank] = fn(runtime, *args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - collected and re-raised
            with failures_lock:
                failures.append((rank, exc, traceback.format_exc()))

    threads = [
        threading.Thread(
            target=worker,
            args=(rank, world.runtime(rank)),
            name=f"gaspi-rank-{rank}",
            daemon=True,
        )
        for rank in range(num_ranks)
    ]
    try:
        for t in threads:
            t.start()
        stuck: List[int] = []
        for rank, t in enumerate(threads):
            t.join(timeout)
            if t.is_alive():
                stuck.append(rank)
        if stuck:
            raise SpmdError(
                [
                    (
                        rank,
                        TimeoutError(
                            f"rank {rank} did not finish within {timeout} s "
                            "(deadlocked collective?)"
                        ),
                        "",
                    )
                    for rank in stuck
                ]
                + failures
            )
    finally:
        world.close()

    if failures:
        failures.sort(key=lambda item: item[0])
        raise SpmdError(failures)
    return results


def run_spmd_on_world(
    world: ThreadedWorld,
    fn: Callable[..., Any],
    *args: Any,
    timeout: Optional[float] = 120.0,
    **kwargs: Any,
) -> List[Any]:
    """Like :func:`run_spmd` but reuses an existing world.

    Useful when a test wants to pre-populate segments or inspect
    :attr:`ThreadedWorld.stats` after the SPMD region completes.  The world
    is *not* closed on return.
    """
    results: List[Any] = [None] * world.size
    failures: List[tuple] = []
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(world.runtime(rank), *args, **kwargs)
        except Exception as exc:  # noqa: BLE001
            with failures_lock:
                failures.append((rank, exc, traceback.format_exc()))

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"gaspi-rank-{rank}", daemon=True)
        for rank in range(world.size)
    ]
    for t in threads:
        t.start()
    stuck = []
    for rank, t in enumerate(threads):
        t.join(timeout)
        if t.is_alive():
            stuck.append(rank)
    if stuck:
        raise SpmdError(
            [
                (rank, TimeoutError(f"rank {rank} did not finish within {timeout} s"), "")
                for rank in stuck
            ]
            + failures
        )
    if failures:
        failures.sort(key=lambda item: item[0])
        raise SpmdError(failures)
    return results
