"""GASPI runtime substrate (a GPI-2 stand-in).

The paper implements its collectives on top of GPI-2, the reference
implementation of the GASPI standard: one-sided RDMA ``write`` /
``write_notify`` into remote *segments*, weak synchronisation through
*notifications* (``notify_waitsome`` / ``notify_reset``), communication
*queues* and *groups*.

This package provides the same API surface in pure Python so the
collectives in :mod:`repro.core` can be written exactly as the paper
describes them and executed for real inside a single process:

* :class:`~repro.gaspi.runtime.GaspiRuntime` — the abstract API every
  collective is written against.
* :class:`~repro.gaspi.threaded.ThreadedWorld` /
  :class:`~repro.gaspi.threaded.ThreadedRuntime` — a thread-per-rank
  implementation with NumPy-backed segments and condition-variable
  notifications.  Data written by ``write_notify`` is guaranteed to be
  visible in the target segment before the matching notification becomes
  visible, which is the core GASPI guarantee the paper's algorithms rely
  on (Table I / Figure 1 of the paper).
* :class:`~repro.gaspi.shm.ShmWorld` /
  :class:`~repro.gaspi.shm.ShmRuntime` — a process-per-rank
  implementation over POSIX shared memory (the closest analogue to real
  GPI-2 segments): no shared GIL, so ranks run truly in parallel, with
  the same write-before-notify visibility guarantee.
* :func:`~repro.gaspi.spmd.run_spmd` / :func:`~repro.gaspi.shm.run_shm`
  — ``mpiexec``-like launchers that run one Python callable per rank
  (thread or process) and return the per-rank results;
  :func:`~repro.gaspi.launch.run_backend` dispatches between them.
"""

from .constants import (
    GASPI_BLOCK,
    GASPI_TEST,
    GASPI_GROUP_ALL,
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_QUEUE_COUNT,
)
from .errors import (
    GaspiError,
    GaspiTimeoutError,
    GaspiInvalidArgumentError,
    GaspiResourceError,
    GaspiQueueFullError,
    GaspiSegmentError,
)
from .segment import Segment
from .notifications import NotificationBoard
from .queue import CommunicationQueue, WriteRequest
from .group import Group
from .runtime import GaspiRuntime
from .subruntime import GroupRuntime
from .threaded import ThreadedWorld, ThreadedRuntime, WorldConfig
from .spmd import run_spmd, SpmdError
from .shm import ShmConfig, ShmRuntime, ShmWorld, run_shm
from .launch import BACKENDS, run_backend

__all__ = [
    "GASPI_BLOCK",
    "GASPI_TEST",
    "GASPI_GROUP_ALL",
    "DEFAULT_NOTIFICATION_COUNT",
    "DEFAULT_QUEUE_COUNT",
    "GaspiError",
    "GaspiTimeoutError",
    "GaspiInvalidArgumentError",
    "GaspiResourceError",
    "GaspiQueueFullError",
    "GaspiSegmentError",
    "Segment",
    "NotificationBoard",
    "CommunicationQueue",
    "WriteRequest",
    "Group",
    "GroupRuntime",
    "GaspiRuntime",
    "ThreadedWorld",
    "ThreadedRuntime",
    "WorldConfig",
    "ShmConfig",
    "ShmRuntime",
    "ShmWorld",
    "BACKENDS",
    "run_spmd",
    "run_shm",
    "run_backend",
    "SpmdError",
]
