"""GASPI groups: subsets of ranks that participate in a collective."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .errors import GaspiInvalidArgumentError


class Group:
    """An ordered set of ranks.

    The GASPI standard scopes collectives and barriers to a group;
    ``GASPI_GROUP_ALL`` contains every rank.  Groups here are immutable
    value objects.
    """

    def __init__(self, ranks: Iterable[int]) -> None:
        ranks = list(ranks)
        if not ranks:
            raise GaspiInvalidArgumentError("a group must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise GaspiInvalidArgumentError(f"duplicate ranks in group: {ranks}")
        if any(r < 0 for r in ranks):
            raise GaspiInvalidArgumentError(f"negative rank in group: {ranks}")
        self._ranks: tuple[int, ...] = tuple(sorted(int(r) for r in ranks))

    @classmethod
    def world(cls, size: int) -> "Group":
        """The group of all ranks ``0 .. size-1`` (``GASPI_GROUP_ALL``)."""
        return cls(range(size))

    @property
    def ranks(self) -> Sequence[int]:
        return self._ranks

    @property
    def size(self) -> int:
        return len(self._ranks)

    def contains(self, rank: int) -> bool:
        return rank in self._ranks

    def index_of(self, rank: int) -> int:
        """Position of ``rank`` within the group (its group-local rank)."""
        try:
            return self._ranks.index(rank)
        except ValueError as exc:
            raise GaspiInvalidArgumentError(
                f"rank {rank} is not a member of group {self._ranks}"
            ) from exc

    def __iter__(self) -> Iterator[int]:
        return iter(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, rank: object) -> bool:
        return rank in self._ranks

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and other._ranks == self._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:
        return f"Group({list(self._ranks)})"
