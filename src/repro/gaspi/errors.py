"""Exception hierarchy for the GASPI runtime substrate."""

from __future__ import annotations


class GaspiError(RuntimeError):
    """Base class for every error raised by the GASPI substrate."""


class GaspiTimeoutError(GaspiError):
    """A blocking call with a finite timeout expired before completion.

    Mirrors ``GASPI_TIMEOUT`` in the GASPI specification.  Collectives use
    finite timeouts to implement the "use stale data instead of waiting"
    behaviour of the SSP allreduce.
    """


class GaspiInvalidArgumentError(GaspiError, ValueError):
    """An argument violates the GASPI API contract (bad rank, offset, size…)."""


class GaspiResourceError(GaspiError):
    """A resource limit was exceeded (segments, notification slots, …)."""


class GaspiQueueFullError(GaspiResourceError):
    """Too many outstanding requests were posted to a communication queue."""


class GaspiSegmentError(GaspiInvalidArgumentError):
    """A segment id is unknown or a segment access is out of bounds."""
