"""Memory segments: the registered RDMA windows of GASPI.

A GASPI *segment* is a contiguous, pinned memory region that remote ranks
can write into with one-sided operations.  Here a segment is a NumPy
``uint8`` buffer plus a :class:`~repro.gaspi.notifications.NotificationBoard`.
Typed views (``float64`` slices etc.) are exposed through
:meth:`Segment.view` so collectives can operate on numerical data without
copying.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from .constants import DEFAULT_NOTIFICATION_COUNT
from .errors import GaspiInvalidArgumentError, GaspiSegmentError
from .notifications import NotificationBoard


class Segment:
    """A registered memory region owned by one rank.

    Parameters
    ----------
    segment_id:
        Small integer identifying the segment; must be identical on every
        rank that communicates through it (as in GPI-2).
    size:
        Size in bytes.
    owner_rank:
        Rank that owns (hosts) this memory.
    num_notifications:
        Number of notification slots attached to the segment.
    """

    def __init__(
        self,
        segment_id: int,
        size: int,
        owner_rank: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        if size <= 0:
            raise GaspiInvalidArgumentError(f"segment size must be > 0, got {size}")
        if segment_id < 0:
            raise GaspiInvalidArgumentError(
                f"segment id must be non-negative, got {segment_id}"
            )
        self.segment_id = int(segment_id)
        self.size = int(size)
        self.owner_rank = int(owner_rank)
        self.buffer = np.zeros(self.size, dtype=np.uint8)
        self.notifications = NotificationBoard(num_notifications)
        # Per-segment lock serialising concurrent remote writes into this
        # memory.  GASPI leaves overlapping concurrent writes undefined; we
        # serialise them so tests are deterministic.
        self._write_lock = threading.Lock()
        #: Total number of bytes remotely written into this segment.
        self.bytes_written = 0
        #: The user array currently bound as the segment memory via
        #: :meth:`rebind` (``None`` while the segment owns its buffer).
        self.bound_array: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # user-memory binding (``gaspi_segment_bind``)
    # ------------------------------------------------------------------ #
    def rebind(self, array: np.ndarray) -> None:
        """Bind user memory as this segment's registered window.

        The GASPI analogue is ``gaspi_segment_bind``: instead of copying
        payloads through a staging buffer, an application registers its own
        memory so one-sided writes land directly in it (and reads post
        directly from it).  The notification board and write lock survive a
        rebind — only the backing memory changes — so cross-call handshakes
        built on notifications keep working across rebinds.

        The caller is responsible for quiescence: no remote write may be in
        flight toward this segment when the memory is swapped (the pipelined
        collectives guarantee this with an entry handshake).
        """
        array = np.asarray(array)
        if not array.flags["C_CONTIGUOUS"]:
            raise GaspiInvalidArgumentError(
                "segment_bind requires C-contiguous memory"
            )
        if array.nbytes != self.size:
            raise GaspiInvalidArgumentError(
                f"bound array has {array.nbytes} bytes but segment "
                f"{self.segment_id} is {self.size} bytes"
            )
        with self._write_lock:
            self.buffer = array.view(np.uint8).reshape(-1)
            self.bound_array = array

    # ------------------------------------------------------------------ #
    # typed access
    # ------------------------------------------------------------------ #
    def view(self, dtype=np.float64, offset: int = 0, count: Optional[int] = None):
        """Return a typed NumPy view of a byte range of the segment.

        Parameters
        ----------
        dtype:
            NumPy dtype of the view.
        offset:
            Byte offset of the first element.
        count:
            Number of *elements* (not bytes).  ``None`` means "to the end of
            the segment" (truncated to a whole number of elements).
        """
        dtype = np.dtype(dtype)
        if offset < 0 or offset > self.size:
            raise GaspiSegmentError(
                f"offset {offset} outside segment of {self.size} bytes"
            )
        avail = self.size - offset
        if count is None:
            count = avail // dtype.itemsize
        nbytes = count * dtype.itemsize
        if nbytes > avail:
            raise GaspiSegmentError(
                f"requested {nbytes} bytes at offset {offset} but only "
                f"{avail} bytes remain in segment {self.segment_id}"
            )
        return self.buffer[offset : offset + nbytes].view(dtype)

    # ------------------------------------------------------------------ #
    # raw byte access used by the runtime
    # ------------------------------------------------------------------ #
    def view_bytes(self, offset: int, size: int) -> np.ndarray:
        """Zero-copy ``uint8`` view of a byte range of the segment.

        This is the posting side of the zero-copy data path: the runtime
        hands this view to the delivery layer instead of materialising an
        intermediate ``bytes`` copy.  GASPI semantics make that safe — the
        source region must stay unmodified until ``gaspi_wait`` returns,
        and every collective in this repository flushes its queue before
        reusing a staging area.
        """
        self._check_range(offset, size)
        return self.buffer[offset : offset + size]

    def read_bytes(self, offset: int, size: int) -> np.ndarray:
        """Copy ``size`` bytes starting at ``offset`` out of the segment.

        The copy is taken under the segment's write lock so a reader never
        observes a half-applied remote write (important for the SSP mailbox
        reads, where a peer may overwrite the slot at any time).
        """
        self._check_range(offset, size)
        with self._write_lock:
            return self.buffer[offset : offset + size].copy()

    def write_bytes(self, offset: int, data: np.ndarray) -> None:
        """Write raw bytes into the segment (remote side of ``gaspi_write``)."""
        data = np.asarray(data, dtype=np.uint8)
        self._check_range(offset, data.size)
        with self._write_lock:
            self.buffer[offset : offset + data.size] = data
            self.bytes_written += int(data.size)

    def fill(self, value: float, dtype=np.float64) -> None:
        """Fill the whole segment (viewed as ``dtype``) with ``value``."""
        self.view(dtype)[:] = value

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.size:
            raise GaspiSegmentError(
                f"byte range [{offset}, {offset + size}) outside segment "
                f"{self.segment_id} of {self.size} bytes"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment(id={self.segment_id}, size={self.size}, "
            f"owner={self.owner_rank})"
        )
