"""Static schedule verification for compiled collective plans.

``repro.analysis`` checks the one-sided GASPI invariants that the rest of
the code base only enforces by example: every ``write_notify`` matched by
a consume, no slot overwritten while its value is unconsumed, no
concurrent overlapping writes, every notification id and byte offset
inside its budget.  The checks run over :class:`~repro.analysis.events.
ProtocolTrace` objects produced either symbolically (:func:`~repro.
analysis.model.build_model` executes the real plan classes on an
in-memory runtime) or from live runs (:class:`~repro.analysis.tracing.
TracingRuntime`).

Entry points
------------
:func:`analyze`
    Run all four checkers over one trace; returns the findings.
:func:`verify_algorithm`
    Model one algorithm/ranks/payload cell and analyze it.
``python -m repro.analysis --all``
    Sweep every registered plannable algorithm × {4, 8, 16} ranks ×
    representative payloads; non-zero exit on any finding.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from .budget import check_budget
from .deadlock import check_double_posts, replay_trace
from .events import (
    BUDGET,
    DATA_RACE,
    DEADLOCK,
    DOUBLE_POST,
    MODEL_STUCK,
    UNMATCHED,
    Event,
    Finding,
    ProtocolTrace,
    SegmentMeta,
)
from .model import ModelRun, ModelRuntime, ModelWorld, build_model
from .races import check_races, compute_vector_clocks
from .tracing import TraceSink, TracingRuntime

__all__ = [
    "BUDGET",
    "DATA_RACE",
    "DEADLOCK",
    "DOUBLE_POST",
    "MODEL_STUCK",
    "UNMATCHED",
    "Event",
    "Finding",
    "ModelRun",
    "ModelRuntime",
    "ModelWorld",
    "ProtocolTrace",
    "SegmentMeta",
    "TraceSink",
    "TracingRuntime",
    "analyze",
    "build_model",
    "verify_algorithm",
]


def analyze(trace: ProtocolTrace) -> List[Finding]:
    """Run every checker over one trace and return all findings.

    Order of operations: the replay recomputes the post/consume matching
    and diagnoses blocked states (unmatched notifications, deadlock
    cycles); the budget check is replay-independent; vector clocks over
    the replayed order feed the double-post and data-race checks.  An
    empty list means the trace upholds every verified invariant.
    """
    findings: List[Finding] = []
    for rank in trace.stalled_ranks:
        findings.append(
            Finding(
                MODEL_STUCK,
                f"rank {rank}'s modelled program could not run to completion",
                rank=rank,
            )
        )
    replay = replay_trace(trace)
    findings.extend(replay.findings)
    findings.extend(check_budget(trace))
    clocks = compute_vector_clocks(trace, replay)
    findings.extend(check_double_posts(trace, replay, clocks))
    findings.extend(check_races(trace, replay, clocks))
    return [
        finding if finding.trace else replace(finding, trace=trace.name)
        for finding in findings
    ]


def verify_algorithm(
    algorithm: str,
    num_ranks: int,
    nbytes: int = 256,
    *,
    root: int = 0,
    chunk_bytes: Optional[int] = None,
    calls: int = 2,
) -> List[Finding]:
    """Model one cell and analyze it — the unit of the CLI sweep."""
    run = build_model(
        algorithm,
        num_ranks,
        nbytes,
        root=root,
        chunk_bytes=chunk_bytes,
        calls=calls,
    )
    return analyze(run.trace)
