"""Symbolic execution of compiled collective plans.

This module runs the *real* plan classes — the same ``__init__`` that
freezes topology, offsets and notification layouts in production — over
an in-memory :class:`ModelRuntime` whose operations are deterministic and
instantaneous, and records every protocol action as an
:class:`~repro.analysis.events.Event`.  The result is one event sequence
per rank, over real payload bytes, for the checkers in
:mod:`repro.analysis.deadlock`, :mod:`repro.analysis.races` and
:mod:`repro.analysis.budget`.

Two execution styles are bridged:

* The three *pipelined* plans are generators already: ``begin(request)``
  yields a :class:`~repro.core.pipeline.WaitSpec` whenever a wait would
  block, so the model simply drives the real generator cooperatively.
* The five *monolithic* plans block inline (``notify_waitsome`` with a
  real timeout).  For these, :mod:`repro.analysis.model` carries one
  *emitter* per plan class — a generator transliteration of the plan's
  ``execute`` body, operating on the plan instance's own frozen operands
  (slots, offsets, notification ids), that yields instead of blocking.
  An emitter contains no schedule knowledge of its own: every offset and
  id it uses comes from the constructed plan, so a planner bug is
  faithfully reproduced in the trace.

All rank programs run under a round-robin cooperative scheduler.  Because
the model executes real NumPy payloads, callers can additionally check
the *numerical* result of the modelled collective — the model is wrong if
it cannot reproduce the algorithm's values, which keeps the emitters
honest against the executors they mirror.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Tuple

import numpy as np

from ..core import kernels
from ..core.bcast import _NOTIF_DATA, BstBcastPlan, FlatBcastPlan
from ..core.allreduce_ring import RingAllreducePlan
from ..core.allreduce_ssp import HypercubeAllreducePlan
from ..core.plan import CollectivePlan, PlanKey, policy_fingerprint
from ..core.policy import CollectiveRequest, ConsistencyPolicy
from ..core.reduce import (
    _NOTIF_ACK,
    _NOTIF_DATA_BASE,
    _NOTIF_READY_BASE,
    BstReducePlan,
)
from ..core.reduction_ops import get_op
from ..core.registry import REGISTRY
from ..gaspi.constants import (
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    GASPI_BLOCK,
)
from ..gaspi.runtime import GaspiRuntime
from .events import (
    BARRIER,
    CONSUME,
    LOCAL_WRITE,
    POST,
    Event,
    ProtocolTrace,
    SegmentMeta,
)

Emitter = Generator[None, None, None]


# --------------------------------------------------------------------------- #
# model substrate
# --------------------------------------------------------------------------- #
class _TrackedView(np.ndarray):
    """Segment view that records stores as ``write`` events.

    Captures the two store idioms of the collectives: slice/scalar
    assignment (staging copies) and ufunc calls with a segment-resident
    ``out=`` (the fused folds of :mod:`repro.core.kernels`, which call
    ``func(acc, contrib, out=acc)``).
    """

    _segment: Optional["ModelSegment"]

    def __array_finalize__(self, obj: Optional[np.ndarray]) -> None:
        self._segment = getattr(obj, "_segment", None)

    def __setitem__(self, key: Any, value: Any) -> None:
        np.ndarray.__setitem__(self, key, value)
        segment = getattr(self, "_segment", None)
        if segment is None:
            return
        if isinstance(key, (int, np.integer)):
            target = np.ndarray.__getitem__(self, slice(int(key), int(key) + 1))
        else:
            target = np.ndarray.__getitem__(self, key)
        if isinstance(target, np.ndarray) and target.nbytes:
            segment.record_store(target)

    def __array_ufunc__(
        self, ufunc: np.ufunc, method: str, *inputs: Any, **kwargs: Any
    ) -> Any:
        out = kwargs.get("out", ())
        if out:
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, _TrackedView) else o for o in out
            )
        plain = tuple(
            x.view(np.ndarray) if isinstance(x, _TrackedView) else x for x in inputs
        )
        result = getattr(ufunc, method)(*plain, **kwargs)
        for original in out:
            if isinstance(original, _TrackedView):
                segment = getattr(original, "_segment", None)
                if segment is not None and original.nbytes:
                    segment.record_store(original)
        return result


class ModelSegment:
    """One rank's copy of a segment: bytes + notification slots."""

    def __init__(
        self, world: "ModelWorld", rank: int, segment_id: int, size: int, slots: int
    ) -> None:
        self.world = world
        self.rank = rank
        self.segment_id = segment_id
        self.buffer = np.zeros(max(int(size), 1), dtype=np.uint8)
        self.num_notifications = slots
        #: Pending notification values, board semantics: a post *overwrites*
        #: the slot — exactly the behaviour the double-post checker audits.
        self.pending: Dict[int, int] = {}

    @property
    def base_address(self) -> int:
        return int(self.buffer.__array_interface__["data"][0])

    def view(self, dtype: Any, offset: int, count: Optional[int]) -> np.ndarray:
        itemsize = np.dtype(dtype).itemsize
        if count is None:
            count = (self.buffer.size - offset) // itemsize
        raw = self.buffer[offset : offset + count * itemsize]
        tracked = raw.view(dtype).view(_TrackedView)
        tracked._segment = self
        return tracked

    def record_store(self, target: np.ndarray) -> None:
        offset = int(target.__array_interface__["data"][0]) - self.base_address
        self.world.record(
            Event(
                kind=LOCAL_WRITE,
                rank=self.rank,
                segment=self.segment_id,
                dst=self.rank,
                offset=offset,
                length=int(target.nbytes),
            )
        )


class ModelWorld:
    """All ranks' segments plus the recorded event sequences."""

    def __init__(self, num_ranks: int) -> None:
        self.num_ranks = num_ranks
        self.events: List[List[Event]] = [[] for _ in range(num_ranks)]
        self.segments: Dict[Tuple[int, int], ModelSegment] = {}
        #: Monotone progress counter for the cooperative scheduler.
        self.op_count = 0
        self._runtimes = [ModelRuntime(self, r) for r in range(num_ranks)]

    def runtime(self, rank: int) -> "ModelRuntime":
        return self._runtimes[rank]

    def record(self, event: Event) -> None:
        self.events[event.rank].append(event)
        self.op_count += 1

    def segment(self, rank: int, segment_id: int) -> ModelSegment:
        try:
            return self.segments[(rank, segment_id)]
        except KeyError:
            raise KeyError(
                f"rank {rank} references segment {segment_id} before creating it"
            ) from None

    def segment_metas(self) -> Dict[Tuple[int, int], SegmentMeta]:
        return {
            key: SegmentMeta(
                rank=seg.rank,
                segment_id=seg.segment_id,
                size=seg.buffer.size,
                num_notifications=seg.num_notifications,
            )
            for key, seg in self.segments.items()
        }


class ModelRuntime(GaspiRuntime):
    """Deterministic in-memory :class:`GaspiRuntime` used by the model.

    Data movement is immediate and in order; waits never block (a blocking
    wait with nothing pending is a model bug and raises).  ``segment_bind``
    is deliberately *not* implemented so ``supports_bind`` is False and the
    pipelined broadcast takes its staging path, whose local copies the
    tracked views can observe.
    """

    def __init__(self, world: ModelWorld, rank: int) -> None:
        self._world = world
        self._rank = rank

    # -- identity ------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.num_ranks

    # -- segments ------------------------------------------------------- #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        key = (self._rank, segment_id)
        if key in self._world.segments:
            raise ValueError(f"rank {self._rank}: segment {segment_id} already exists")
        self._world.segments[key] = ModelSegment(
            self._world, self._rank, segment_id, size, num_notifications
        )

    def segment_delete(self, segment_id: int) -> None:
        self._world.segments.pop((self._rank, segment_id), None)

    def segment_view(
        self,
        segment_id: int,
        dtype: Any = np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        return self._world.segment(self._rank, segment_id).view(dtype, offset, count)

    def segment_size(self, segment_id: int) -> int:
        return self._world.segment(self._rank, segment_id).buffer.size

    def segment_read(
        self,
        segment_id: int,
        dtype: Any = np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        segment = self._world.segment(self._rank, segment_id)
        itemsize = np.dtype(dtype).itemsize
        if count is None:
            count = (segment.buffer.size - offset) // itemsize
        return segment.buffer[offset : offset + count * itemsize].view(dtype).copy()

    # -- one-sided ------------------------------------------------------ #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        self._transfer(
            segment_id_local, offset_local, target_rank, segment_id_remote,
            offset_remote, size,
        )
        self._world.record(
            Event(
                kind=POST,
                rank=self._rank,
                segment=segment_id_remote,
                dst=target_rank,
                offset=offset_remote,
                length=size,
                local_offset=offset_local,
                note="write",
            )
        )

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        target = self._world.segment(target_rank, segment_id_remote)
        target.pending[notification_id] = notification_value
        self._world.record(
            Event(
                kind=POST,
                rank=self._rank,
                segment=segment_id_remote,
                dst=target_rank,
                notif_id=notification_id,
                value=notification_value,
            )
        )

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self._transfer(
            segment_id_local, offset_local, target_rank, segment_id_remote,
            offset_remote, size,
        )
        target = self._world.segment(target_rank, segment_id_remote)
        target.pending[notification_id] = notification_value
        self._world.record(
            Event(
                kind=POST,
                rank=self._rank,
                segment=segment_id_remote,
                dst=target_rank,
                offset=offset_remote,
                length=size,
                notif_id=notification_id,
                value=notification_value,
                local_offset=offset_local,
            )
        )

    def _transfer(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
    ) -> None:
        source = self._world.segment(self._rank, segment_id_local)
        target = self._world.segment(target_rank, segment_id_remote)
        data = source.buffer[offset_local : offset_local + size]
        target.buffer[offset_remote : offset_remote + size] = data

    # -- weak synchronisation ------------------------------------------- #
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        segment = self._world.segment(self._rank, segment_id_local)
        if notification_count is None:
            notification_count = segment.num_notifications - notification_begin
        end = notification_begin + notification_count
        pending = [
            nid
            for nid, value in segment.pending.items()
            if value > 0 and notification_begin <= nid < end
        ]
        if pending:
            return min(pending)
        if timeout == GASPI_BLOCK or timeout > 0:
            raise RuntimeError(
                f"rank {self._rank}: blocking notify_waitsome([{notification_begin}, "
                f"{end}) on segment {segment_id_local}) inside the model — emitters "
                "must poll with timeout=0 and yield"
            )
        return None

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        segment = self._world.segment(self._rank, segment_id_local)
        value = segment.pending.pop(notification_id, 0)
        if value > 0:
            self._world.record(
                Event(
                    kind=CONSUME,
                    rank=self._rank,
                    segment=segment_id_local,
                    dst=self._rank,
                    notif_id=notification_id,
                    value=value,
                )
            )
        return value

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        segment = self._world.segment(self._rank, segment_id_local)
        return segment.pending.get(notification_id, 0)

    # -- queues / synchronisation --------------------------------------- #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        return None

    def barrier(self, group: Any = None, timeout: float = GASPI_BLOCK) -> None:
        self._world.record(Event(kind=BARRIER, rank=self._rank))


# --------------------------------------------------------------------------- #
# emitters: generator transliterations of the monolithic plan executors
# --------------------------------------------------------------------------- #
def _consume(
    rt: GaspiRuntime, segment_id: int, notif_id: int
) -> Generator[None, None, int]:
    """Poll for one notification, yielding while absent; reset and return it."""
    while rt.notify_waitsome(segment_id, notif_id, 1, timeout=0.0) is None:
        yield
    return rt.notify_reset(segment_id, notif_id)


def _emit_bst_bcast(plan: BstBcastPlan, request: CollectiveRequest) -> Emitter:
    buffer = np.asarray(request.sendbuf)
    rt = plan.runtime
    sid = plan.segment_id
    send = plan.send_elems
    if rt.rank == plan.key.root:
        plan._staging[:send] = buffer[:send]
    else:
        yield from _consume(rt, sid, _NOTIF_DATA)
        buffer[:send] = plan._staging[:send]
    if plan.children:
        if plan.calls:
            for slot in plan.child_ack_slots:
                yield from _consume(rt, sid, slot)
        for child in plan.children:
            rt.write_notify(sid, 0, child, sid, 0, plan.send_bytes, _NOTIF_DATA)
        rt.wait(0)
    if plan.parent is not None:
        rt.notify(plan.parent, sid, plan.parent_ack_slot)
        rt.wait(0)
    plan.calls += 1


def _emit_flat_bcast(plan: FlatBcastPlan, request: CollectiveRequest) -> Emitter:
    buffer = np.asarray(request.sendbuf)
    rt = plan.runtime
    sid = plan.segment_id
    send = plan.send_elems
    if rt.rank == plan.key.root:
        if plan.calls:
            for slot in plan.peer_ack_slots:
                yield from _consume(rt, sid, slot)
        plan._staging[:send] = buffer[:send]
        for peer in plan.peers:
            rt.write_notify(sid, 0, peer, sid, 0, plan.send_bytes, _NOTIF_DATA)
        rt.wait(0)
    else:
        yield from _consume(rt, sid, _NOTIF_DATA)
        buffer[:send] = plan._staging[:send]
        rt.notify(plan.key.root, sid, plan.ack_slot)
        rt.wait(0)
    plan.calls += 1


def _emit_bst_reduce(plan: BstReducePlan, request: CollectiveRequest) -> Emitter:
    sendbuf = np.asarray(request.sendbuf)
    operator = get_op(request.op)
    rt = plan.runtime
    sid = plan.segment_id
    reduce_elems = plan.reduce_elems
    contributors = 1 if plan.participating else 0
    if plan.participating:
        accumulator = sendbuf[:reduce_elems].astype(plan.dtype, copy=True)
        for child in plan.children:
            rt.notify(child, sid, _NOTIF_READY_BASE)
        if plan.children:
            rt.wait(0)
        for child, child_index, slot in zip(
            plan.children, plan.child_indices, plan._child_slots
        ):
            value = yield from _consume(rt, sid, _NOTIF_DATA_BASE + child_index)
            contributors += max(1, value) if value else 1
            kernels.reduce_into(operator, accumulator, slot)
            rt.notify(child, sid, _NOTIF_ACK)
        if plan.children:
            rt.wait(0)
        if rt.rank == plan.key.root:
            if request.recvbuf is not None:
                np.asarray(request.recvbuf)[:reduce_elems] = accumulator
        else:
            yield from _consume(rt, sid, _NOTIF_READY_BASE)
            plan._staging[:] = accumulator
            rt.write_notify(
                sid,
                0,
                plan.parent,
                sid,
                plan.my_index * plan.reduce_bytes,
                plan.reduce_bytes,
                _NOTIF_DATA_BASE + plan.my_index,
                max(1, contributors),
            )
            rt.wait(0)
            yield from _consume(rt, sid, _NOTIF_ACK)
    plan.calls += 1


def _emit_ring_allreduce(plan: RingAllreducePlan, request: CollectiveRequest) -> Emitter:
    sendbuf = np.asarray(request.sendbuf)
    operator = get_op(request.op)
    rt = plan.runtime
    sid = plan.segment_id
    itemsize = plan.dtype.itemsize
    recvbuf = np.asarray(request.recvbuf) if request.recvbuf is not None else None
    if rt.size == 1:
        if recvbuf is not None:
            recvbuf[:] = sendbuf
        plan.calls += 1
        return
    work = sendbuf.astype(plan.dtype, copy=True)
    for i, (step, (s_begin, s_end), (r_begin, r_end), reduce_step) in enumerate(
        plan.steps
    ):
        send_slot = plan._send_slots[i]
        if send_slot is not None:
            send_slot[:] = work[s_begin:s_end]
            rt.write_notify(
                sid,
                plan.send_region + step * plan.slot_bytes,
                plan.next_rank,
                sid,
                step * plan.slot_bytes,
                (s_end - s_begin) * itemsize,
                step,
            )
        else:
            rt.notify(plan.next_rank, sid, step)
        rt.wait(0)
        yield from _consume(rt, sid, step)
        recv_slot = plan._recv_slots[i]
        if recv_slot is not None:
            if reduce_step:
                kernels.reduce_into(operator, work[r_begin:r_end], recv_slot)
            else:
                work[r_begin:r_end] = recv_slot
    if recvbuf is not None:
        recvbuf[:] = work
    plan.calls += 1


def _emit_ssp_allreduce(
    plan: HypercubeAllreducePlan, request: CollectiveRequest
) -> Emitter:
    """Transliteration of :meth:`SSPAllreduce.reduce` (Algorithm 1).

    ``_send_partial`` and ``_read_mailbox`` are non-blocking and reused
    directly from the instance; only the stale-wait loop is rewritten to
    yield instead of sleeping.
    """
    instance = plan.instance
    rt = instance.runtime
    sid = instance.segment_id
    contribution = np.ascontiguousarray(request.sendbuf, dtype=instance.dtype)
    instance.clock += 1
    min_clock_accepted = instance.clock - instance.slack
    part_red = contribution.copy()
    part_clock = instance.clock
    for k in range(instance.dimensions):
        partner = instance.hypercube.partner(rt.rank, k)
        instance._send_partial(partner, k, part_red, part_clock)
        rcv_clock, rcv_data = instance._read_mailbox(k)
        if rcv_clock < min_clock_accepted:
            while True:
                got = rt.notify_waitsome(sid, k, 1, timeout=0.0)
                if got is not None:
                    rt.notify_reset(sid, got)
                rcv_clock, rcv_data = instance._read_mailbox(k)
                if rcv_clock >= min_clock_accepted:
                    break
                yield
        else:
            if rt.notify_peek(sid, k):
                rt.notify_reset(sid, k)
        kernels.reduce_into(instance.op, part_red, rcv_data)
        part_clock = min(part_clock, int(rcv_clock))
    if request.recvbuf is not None:
        np.asarray(request.recvbuf)[:] = part_red
    plan.calls += 1


def _drive_pipelined(plan: CollectivePlan, request: CollectiveRequest) -> Emitter:
    """Cooperatively drive a pipelined plan's real ``begin()`` generator."""
    rt = plan.runtime
    gen = plan.begin(request)  # type: ignore[attr-defined]
    while True:
        try:
            spec = next(gen)
        except StopIteration:
            return
        while (
            rt.notify_waitsome(spec.segment_id, spec.first, spec.count, timeout=0.0)
            is None
        ):
            yield


_EMITTERS: Dict[type, Callable[[Any, CollectiveRequest], Emitter]] = {
    BstBcastPlan: _emit_bst_bcast,
    FlatBcastPlan: _emit_flat_bcast,
    BstReducePlan: _emit_bst_reduce,
    RingAllreducePlan: _emit_ring_allreduce,
    HypercubeAllreducePlan: _emit_ssp_allreduce,
}


def _emitter_for(plan: CollectivePlan) -> Callable[[Any, CollectiveRequest], Emitter]:
    if hasattr(plan, "begin"):
        return _drive_pipelined
    try:
        return _EMITTERS[type(plan)]
    except KeyError:
        raise NotImplementedError(
            f"no symbolic emitter for plan class {type(plan).__name__}"
        ) from None


# --------------------------------------------------------------------------- #
# cooperative scheduler and entry point
# --------------------------------------------------------------------------- #
@dataclass
class ModelRun:
    """A completed symbolic execution: the trace plus the data it computed."""

    trace: ProtocolTrace
    world: ModelWorld
    plans: List[CollectivePlan]
    sendbufs: List[np.ndarray]
    recvbufs: List[Optional[np.ndarray]]
    algorithm: str = ""
    stalled_ranks: List[int] = field(default_factory=list)


def _run_cooperative(world: ModelWorld, programs: List[Iterator[None]]) -> List[int]:
    """Round-robin the rank programs to completion; return stalled ranks."""
    live: Dict[int, Iterator[None]] = dict(enumerate(programs))
    while live:
        progressed = False
        for rank in sorted(live):
            before = world.op_count
            try:
                next(live[rank])
            except StopIteration:
                del live[rank]
                progressed = True
                continue
            if world.op_count != before:
                progressed = True
        if not progressed:
            return sorted(live)
    return []


def build_model(
    algorithm: str,
    num_ranks: int,
    nbytes: int = 256,
    *,
    root: int = 0,
    op: str = "sum",
    chunk_bytes: Optional[int] = None,
    calls: int = 2,
    segment_id: int = 23,
) -> ModelRun:
    """Symbolically execute ``calls`` back-to-back planned collectives.

    Builds the real compiled plan of ``algorithm`` on every rank of a
    ``num_ranks``-rank :class:`ModelWorld` (float64 payloads of ``nbytes``
    bytes), runs ``calls`` consecutive calls per rank under the
    cooperative scheduler — two calls exercise every cross-call
    consume-ack handshake — and returns the recorded
    :class:`~repro.analysis.events.ProtocolTrace` together with the
    payload buffers for numerical validation.
    """
    info = REGISTRY.get(algorithm)
    if not info.plannable:
        raise ValueError(f"algorithm {algorithm!r} has no compiled plan to verify")
    dtype = np.dtype(np.float64)
    elements = max(1, nbytes // dtype.itemsize)
    nbytes = elements * dtype.itemsize
    policy = ConsistencyPolicy(chunk_bytes=chunk_bytes)
    key = PlanKey(
        collective=info.collective,
        algorithm=algorithm,
        size=num_ranks,
        root=root,
        nbytes=nbytes,
        dtype=dtype.str,
        op=op,
        policy=policy_fingerprint(policy),
    )

    world = ModelWorld(num_ranks)
    plans = [
        info.plan(world.runtime(rank), key, segment_id, policy)
        for rank in range(num_ranks)
    ]

    sendbufs: List[np.ndarray] = []
    recvbufs: List[Optional[np.ndarray]] = []
    for rank in range(num_ranks):
        if info.collective == "bcast":
            if rank == root:
                sendbufs.append(np.arange(elements, dtype=dtype) + 1.0)
            else:
                sendbufs.append(np.zeros(elements, dtype=dtype))
            recvbufs.append(None)
        else:
            sendbufs.append(np.arange(elements, dtype=dtype) + rank + 1.0)
            recvbufs.append(np.zeros(elements, dtype=dtype))

    emit = _emitter_for(plans[0])

    def rank_program(rank: int) -> Emitter:
        for _ in range(calls):
            request = CollectiveRequest(
                collective=info.collective,
                sendbuf=sendbufs[rank],
                recvbuf=recvbufs[rank],
                root=root,
                op=op,
                policy=policy,
                segment_id=segment_id,
            )
            yield from emit(plans[rank], request)

    stalled = _run_cooperative(world, [rank_program(r) for r in range(num_ranks)])

    chunk_label = "-" if chunk_bytes is None else str(chunk_bytes)
    trace = ProtocolTrace(
        name=(
            f"{algorithm}[ranks={num_ranks}, root={root}, nbytes={nbytes}, "
            f"chunk_bytes={chunk_label}, calls={calls}]"
        ),
        num_ranks=num_ranks,
        events=world.events,
        segments=world.segment_metas(),
        overwrite_tolerant=isinstance(plans[0], HypercubeAllreducePlan),
        stalled_ranks=stalled,
    )
    return ModelRun(
        trace=trace,
        world=world,
        plans=plans,
        sendbufs=sendbufs,
        recvbufs=recvbufs,
        algorithm=algorithm,
        stalled_ranks=stalled,
    )
