"""CLI sweep: ``python -m repro.analysis --all``.

Models every registered plannable algorithm at several rank counts and
representative payloads (monolithic and pipelined/chunked), runs all four
checkers over each cell, and prints a findings report.  Exit status is
non-zero when any finding survives — CI runs this as the
``static-analysis`` job.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.registry import REGISTRY
from . import analyze, build_model
from .events import Finding

#: (nbytes, chunk_bytes) payload cells, chosen so pipelined plans exercise
#: several chunks per call while the whole sweep stays CI-fast.
_MONOLITHIC_PAYLOADS: List[Tuple[int, Optional[int]]] = [(256, None), (1024, None)]
_PIPELINED_PAYLOADS: List[Tuple[int, Optional[int]]] = [(512, 128), (2048, 512)]


def _cells(
    algorithms: Sequence[str], rank_counts: Sequence[int]
) -> List[Tuple[str, int, int, Optional[int], int]]:
    """(algorithm, ranks, nbytes, chunk_bytes, root) cells of the sweep."""
    cells: List[Tuple[str, int, int, Optional[int], int]] = []
    for name in algorithms:
        info = REGISTRY.get(name)
        payloads = (
            _PIPELINED_PAYLOADS
            if info.capabilities.pipelined
            else _MONOLITHIC_PAYLOADS
        )
        for ranks in rank_counts:
            reason = info.capabilities.unsupported_reason(
                ranks, None, None
            )
            if reason is not None:
                continue
            roots = [0]
            if info.collective in ("bcast", "reduce") and ranks == 8:
                roots.append(1)  # a non-default root reshapes the tree
            for nbytes, chunk_bytes in payloads:
                for root in roots:
                    cells.append((name, ranks, nbytes, chunk_bytes, root))
    return cells


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static schedule verifier for compiled collective plans.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--all",
        action="store_true",
        help="sweep every registered plannable algorithm",
    )
    group.add_argument(
        "--algorithm",
        help="verify a single registered plannable algorithm",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        nargs="+",
        default=[4, 8, 16],
        help="rank counts to model (default: 4 8 16)",
    )
    parser.add_argument(
        "--calls",
        type=int,
        default=2,
        help="back-to-back calls per cell (2 exercises cross-call handshakes)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    args = parser.parse_args(argv)

    if args.all:
        algorithms = [info.name for info in REGISTRY.items() if info.plannable]
        algorithms.sort()
    else:
        info = REGISTRY.get(args.algorithm)
        if not info.plannable:
            parser.error(
                f"algorithm {args.algorithm!r} has no compiled plan to verify"
            )
        algorithms = [info.name]

    started = time.perf_counter()
    report: List[Dict[str, object]] = []
    all_findings: List[Finding] = []
    for name, ranks, nbytes, chunk_bytes, root in _cells(algorithms, args.ranks):
        run = build_model(
            name,
            ranks,
            nbytes,
            root=root,
            chunk_bytes=chunk_bytes,
            calls=args.calls,
        )
        findings = analyze(run.trace)
        all_findings.extend(findings)
        report.append(
            {
                "cell": run.trace.name,
                "events": run.trace.total_events(),
                "findings": [finding.describe() for finding in findings],
            }
        )
        if not args.json:
            status = "ok" if not findings else f"{len(findings)} finding(s)"
            print(f"{status:>14}  {run.trace.name}  ({run.trace.total_events()} events)")
            for finding in findings:
                print(f"                {finding.describe()}")
    elapsed = time.perf_counter() - started

    if args.json:
        print(
            json.dumps(
                {
                    "cells": report,
                    "total_findings": len(all_findings),
                    "elapsed_seconds": round(elapsed, 3),
                },
                indent=2,
            )
        )
    else:
        print(
            f"\n{len(report)} cell(s) verified in {elapsed:.2f}s — "
            f"{len(all_findings)} finding(s)"
        )
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
