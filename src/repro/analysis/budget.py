"""Notification-id and segment-offset budget checks.

Every notification id a trace uses must fall inside the destination
segment's notification board, and every byte a transfer touches must fall
inside the destination (and source) segment — the static counterpart of
the :class:`~repro.core.notifmap.NotificationLayout` allocator and of the
workspace pool sizing in :meth:`~repro.core.plan.CollectivePlan`.

These are pure per-event range checks: no replay or ordering is needed,
so the check also diagnoses traces that deadlock before completing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import (
    BUDGET,
    CONSUME,
    LOCAL_WRITE,
    POST,
    Event,
    Finding,
    ProtocolTrace,
    SegmentMeta,
)


def _meta(
    trace: ProtocolTrace, rank: int, segment: int
) -> Optional[SegmentMeta]:
    return trace.segments.get((rank, segment))


def check_budget(trace: ProtocolTrace) -> List[Finding]:
    """Range-check every notification id and byte offset in the trace."""
    findings: List[Finding] = []
    seen: Dict[Tuple[str, int, int, int], bool] = {}

    def report(
        message: str, rank: int, segment: int, notif_id: int = -1
    ) -> None:
        key = (message, rank, segment, notif_id)
        if key in seen:
            return
        seen[key] = True
        findings.append(
            Finding(
                BUDGET, message, rank=rank, segment=segment, notif_id=notif_id
            )
        )

    def check_range(event: Event, meta: SegmentMeta, rank: int, where: str) -> None:
        offset = event.offset if where == "destination" else event.local_offset
        if offset < 0 or offset + event.length > meta.size:
            report(
                f"write of {event.length} bytes at offset {offset} exceeds the "
                f"{meta.size}-byte {where} segment",
                rank,
                event.segment,
            )

    for sequence in trace.events:
        for event in sequence:
            if event.kind == POST:
                meta = _meta(trace, event.dst, event.segment)
                if meta is None:
                    report(
                        f"post targets segment {event.segment} which rank "
                        f"{event.dst} never created",
                        event.dst,
                        event.segment,
                        event.notif_id,
                    )
                    continue
                if event.notif_id >= meta.num_notifications:
                    report(
                        f"notification id {event.notif_id} is outside the "
                        f"destination board of {meta.num_notifications} slots",
                        event.dst,
                        event.segment,
                        event.notif_id,
                    )
                if event.length > 0:
                    check_range(event, meta, event.dst, "destination")
                    local = _meta(trace, event.rank, event.segment)
                    if local is not None and event.local_offset >= 0:
                        check_range(event, local, event.rank, "source")
            elif event.kind == CONSUME:
                meta = _meta(trace, event.rank, event.segment)
                if meta is None:
                    report(
                        f"consume on segment {event.segment} which rank "
                        f"{event.rank} never created",
                        event.rank,
                        event.segment,
                        event.notif_id,
                    )
                elif event.notif_id >= meta.num_notifications:
                    report(
                        f"notification id {event.notif_id} is outside the "
                        f"local board of {meta.num_notifications} slots",
                        event.rank,
                        event.segment,
                        event.notif_id,
                    )
            elif event.kind == LOCAL_WRITE and event.length > 0:
                meta = _meta(trace, event.rank, event.segment)
                if meta is not None and (
                    event.offset < 0 or event.offset + event.length > meta.size
                ):
                    report(
                        f"local store of {event.length} bytes at offset "
                        f"{event.offset} exceeds the {meta.size}-byte segment",
                        event.rank,
                        event.segment,
                    )
    return findings
