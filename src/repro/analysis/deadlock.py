"""Replay-based matching, wait-for graph, and double-post audit.

The replay recomputes the post/consume matching from the event sequences
alone — it never trusts any pairing the trace producer may have known —
so a mutated or hand-edited trace is diagnosed from first principles:

* a rank whose next consume can never be satisfied (no pending post, no
  unexecuted post anywhere targeting that slot) → ``unmatched-notification``;
* ranks blocked on each other's *future* posts (a cycle in the wait-for
  graph, or a barrier some rank can never reach) → ``deadlock``;
* a slot posted again before its previous value was provably consumed
  (the lost-notification race: notification boards *overwrite* on post)
  → ``double-post``.

The double-post criterion is interleaving-independent: for consecutive
posts ``p`` then ``q`` to one slot, the trace is safe only if some
consume of ``p`` happens-before ``q`` in the vector-clock order — not
merely earlier in the replay's particular schedule.  Traces flagged
``overwrite_tolerant`` (the SSP hypercube, whose slot values are logical
clocks and whose state lives in the re-read mailbox) skip this audit
only; all other checks still apply to them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .events import (
    BARRIER,
    CONSUME,
    DEADLOCK,
    DOUBLE_POST,
    POST,
    UNMATCHED,
    Event,
    Finding,
    ProtocolTrace,
)

#: (rank, index-within-rank-sequence) — a trace location.
Loc = Tuple[int, int]
#: (dst rank, segment, notification id) — a notification slot.
Slot = Tuple[int, int, int]
VectorClock = Tuple[int, ...]


@dataclass
class ReplayResult:
    """Outcome of replaying a trace to a feasible execution order."""

    findings: List[Finding]
    completed: bool
    #: Every executed event in one feasible global order.
    order: List[Loc] = field(default_factory=list)
    #: Consume location → the post locations whose values it observed
    #: (every post pending on the slot when the reset happened).
    matches: Dict[Loc, List[Loc]] = field(default_factory=dict)
    #: Post location → the consume that first observed it (if any).
    consumed_by: Dict[Loc, Loc] = field(default_factory=dict)
    #: Slot → its posts in delivery order.
    slot_posts: Dict[Slot, List[Loc]] = field(default_factory=dict)


def replay_trace(trace: ProtocolTrace) -> ReplayResult:
    """Execute the per-rank sequences against board semantics.

    Each rank runs to its next blocking point (a consume with nothing
    pending, or a barrier); posts deliver immediately.  A global barrier
    releases only when every rank is at one.  If no rank can advance, the
    stuck state is diagnosed into findings (see module docstring).
    """
    num_ranks = trace.num_ranks
    sequences = trace.events
    position = [0] * num_ranks
    pending: Dict[Slot, List[Loc]] = defaultdict(list)
    result = ReplayResult(findings=[], completed=False)

    def blocked(rank: int) -> Optional[Event]:
        if position[rank] >= len(sequences[rank]):
            return None
        return sequences[rank][position[rank]]

    while True:
        progressed = False
        for rank in range(num_ranks):
            while position[rank] < len(sequences[rank]):
                event = sequences[rank][position[rank]]
                location = (rank, position[rank])
                if event.kind == BARRIER:
                    break
                if event.kind == CONSUME:
                    slot = (rank, event.segment, event.notif_id)
                    waiting = pending.get(slot)
                    if not waiting:
                        break
                    result.matches[location] = list(waiting)
                    for post_loc in waiting:
                        result.consumed_by.setdefault(post_loc, location)
                    waiting.clear()
                elif event.kind == POST and event.notif_id >= 0:
                    slot = (event.dst, event.segment, event.notif_id)
                    pending[slot].append(location)
                    result.slot_posts.setdefault(slot, []).append(location)
                result.order.append(location)
                position[rank] += 1
                progressed = True

        remaining = [r for r in range(num_ranks) if position[r] < len(sequences[r])]
        if not remaining:
            result.completed = True
            break
        at_barrier = [r for r in remaining if sequences[r][position[r]].kind == BARRIER]
        if len(at_barrier) == num_ranks:
            # Everyone is at a barrier: release the group atomically so the
            # barrier events are consecutive in the replay order (the
            # vector-clock pass relies on this).
            for rank in at_barrier:
                result.order.append((rank, position[rank]))
                position[rank] += 1
            progressed = True
        if not progressed:
            _diagnose_stuck(trace, position, pending, result)
            break
    return result


def _diagnose_stuck(
    trace: ProtocolTrace,
    position: Sequence[int],
    pending: Dict[Slot, List[Loc]],
    result: ReplayResult,
) -> None:
    """Classify a no-progress state into unmatched/deadlock findings."""
    num_ranks = trace.num_ranks
    sequences = trace.events
    remaining = [r for r in range(num_ranks) if position[r] < len(sequences[r])]
    finished = [r for r in range(num_ranks) if position[r] >= len(sequences[r])]
    edges: Dict[int, List[int]] = {}

    for rank in remaining:
        event = sequences[rank][position[rank]]
        if event.kind == BARRIER:
            if finished:
                result.findings.append(
                    Finding(
                        DEADLOCK,
                        f"rank {rank} waits at a barrier that rank(s) "
                        f"{finished} never reach",
                        rank=rank,
                    )
                )
            edges[rank] = [
                r
                for r in remaining
                if r != rank and sequences[r][position[r]].kind != BARRIER
            ]
            continue
        # Blocked consume: is there any unexecuted post for this slot?
        slot = (rank, event.segment, event.notif_id)
        posters = []
        for src in range(num_ranks):
            for later in sequences[src][position[src] :]:
                if (
                    later.kind == POST
                    and later.notif_id == event.notif_id
                    and later.segment == event.segment
                    and later.dst == rank
                ):
                    posters.append(src)
                    break
        if posters:
            edges[rank] = posters
        else:
            result.findings.append(
                Finding(
                    UNMATCHED,
                    f"rank {rank} waits for notification {event.notif_id} on "
                    f"segment {event.segment} but no rank ever posts it",
                    rank=rank,
                    segment=event.segment,
                    notif_id=event.notif_id,
                )
            )

    for cycle in _find_cycles(edges):
        chain = " -> ".join(str(r) for r in cycle + [cycle[0]])
        result.findings.append(
            Finding(
                DEADLOCK,
                f"circular wait among ranks: {chain} (each blocks on a "
                "notification the next would only post later)",
                rank=cycle[0],
            )
        )
    if not result.findings:
        result.findings.append(
            Finding(
                DEADLOCK,
                f"ranks {remaining} made no progress and no single blocker "
                "could be isolated",
                rank=remaining[0] if remaining else -1,
            )
        )


def _find_cycles(edges: Dict[int, List[int]]) -> List[List[int]]:
    """Elementary cycles of the (tiny) wait-for graph, one per SCC entry."""
    cycles: List[List[int]] = []
    seen_cycle_keys = set()
    for start in sorted(edges):
        stack = [(start, [start])]
        visited = set()
        while stack:
            node, path = stack.pop()
            for neighbour in edges.get(node, ()):
                if neighbour == start and len(path) > 0:
                    key = frozenset(path)
                    if key not in seen_cycle_keys:
                        seen_cycle_keys.add(key)
                        cycles.append(path)
                elif neighbour not in visited and neighbour in edges:
                    visited.add(neighbour)
                    stack.append((neighbour, path + [neighbour]))
    return cycles


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """Component-wise ≤ — ``a`` happens-before-or-equals ``b``."""
    return all(x <= y for x, y in zip(a, b))


def check_double_posts(
    trace: ProtocolTrace,
    replay: ReplayResult,
    clocks: Dict[Loc, VectorClock],
) -> List[Finding]:
    """Flag posts that can overwrite an unconsumed notification value.

    For consecutive posts ``p`` then ``q`` to the same slot, require a
    consume of ``p`` that happens-before ``q``.  Un-reposted trailing
    notifications (the final call's acks) are normal and not findings.
    """
    if trace.overwrite_tolerant:
        return []
    findings: List[Finding] = []
    for (dst, segment, notif_id), posts in sorted(replay.slot_posts.items()):
        for current, following in zip(posts, posts[1:]):
            poster = current[0]
            reposter = following[0]
            consume = replay.consumed_by.get(current)
            if consume is None:
                findings.append(
                    Finding(
                        DOUBLE_POST,
                        f"rank {reposter} re-posts notification {notif_id} on "
                        f"rank {dst}'s segment {segment} while rank {poster}'s "
                        "earlier post was never consumed — the first value is "
                        "silently overwritten",
                        rank=dst,
                        segment=segment,
                        notif_id=notif_id,
                    )
                )
            elif consume not in clocks or following not in clocks:
                continue  # stuck replay: the pair never executed
            elif not vc_leq(clocks[consume], clocks[following]):
                findings.append(
                    Finding(
                        DOUBLE_POST,
                        f"rank {reposter}'s re-post of notification {notif_id} "
                        f"on rank {dst}'s segment {segment} is not ordered "
                        f"after rank {dst}'s consume of the previous value — "
                        "under an adverse interleaving the notification is lost",
                        rank=dst,
                        segment=segment,
                        notif_id=notif_id,
                    )
                )
    return findings
