"""Event vocabulary shared by the static model and the runtime tracer.

Every checker in :mod:`repro.analysis` consumes the same structure: a
:class:`ProtocolTrace` holding one *ordered event sequence per rank* plus
the metadata of every segment the sequences touch.  Traces come from two
producers —

* :mod:`repro.analysis.model` builds them symbolically, by running the
  compiled plans of every plannable algorithm over an in-memory
  :class:`~repro.analysis.model.ModelRuntime` (no threads, no timing);
* :mod:`repro.analysis.tracing` records them from *real* threaded/shm
  executions through :class:`~repro.analysis.tracing.TracingRuntime` —

so a finding means the same thing regardless of where the trace came
from, and the static model can be validated against reality.

Four event kinds cover the one-sided GASPI protocol surface:

``post``
    A notification leaving ``rank`` for ``dst`` (``gaspi_notify`` or the
    notification half of ``gaspi_write_notify``).  ``length > 0`` means
    the post also carried data: ``length`` bytes written to byte
    ``offset`` of segment ``segment`` *at the destination* (GASPI
    guarantees the data is visible before the notification).
``consume``
    A successful ``notify_reset`` at ``rank`` of slot ``notif_id`` on its
    own ``segment`` (``value`` is the swapped-out notification value).
``write``
    A *local* store into ``rank``'s own copy of ``segment`` — staging
    copies, segment-resident accumulator folds.  Only the model records
    these (a real runtime cannot observe stores through NumPy views).
``barrier``
    Participation in a global barrier; barriers with the same per-rank
    ordinal synchronise across all ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

POST = "post"
CONSUME = "consume"
LOCAL_WRITE = "write"
BARRIER = "barrier"


@dataclass(frozen=True)
class Event:
    """One protocol-relevant action of one rank (see module docstring)."""

    kind: str
    rank: int
    segment: int = -1
    #: Destination rank of a post's notification/data; ``rank`` itself for
    #: local writes and consumes.
    dst: int = -1
    #: Destination byte offset of the data written (posts with data and
    #: local writes); -1 when the event moves no data.
    offset: int = -1
    #: Bytes written at ``offset`` (0 = pure notification).
    length: int = 0
    notif_id: int = -1
    value: int = 0
    #: Source byte offset of a data-carrying post (for budget checks of
    #: the local side of ``write_notify``).
    local_offset: int = -1
    note: str = ""

    def with_notif_id(self, notif_id: int) -> "Event":
        """Copy of this event with a different notification id."""
        return replace(self, notif_id=notif_id)


@dataclass(frozen=True)
class SegmentMeta:
    """Size and notification budget of one rank's copy of a segment."""

    rank: int
    segment_id: int
    size: int
    num_notifications: int


@dataclass
class ProtocolTrace:
    """Per-rank event sequences plus segment metadata — checker input.

    Attributes
    ----------
    name:
        Human-readable label (algorithm and parameters) used in findings.
    num_ranks:
        World size; ``events`` has exactly this many sequences.
    events:
        ``events[r]`` is rank ``r``'s actions in program order.
    segments:
        ``(rank, segment_id)`` → :class:`SegmentMeta` for every segment
        created while the trace was produced.
    overwrite_tolerant:
        True for protocols whose notification slots are idempotent
        freshness hints rather than at-most-once tokens (the SSP
        hypercube: values carry logical clocks and the actual state lives
        in the mailbox, which is re-read after every consume).  The
        double-post check is skipped for such traces — an overwrite loses
        nothing by design.
    stalled_ranks:
        Ranks whose model program could not run to completion (only the
        model sets this; a correct algorithm never does).
    """

    name: str
    num_ranks: int
    events: List[List[Event]]
    segments: Dict[Tuple[int, int], SegmentMeta] = field(default_factory=dict)
    overwrite_tolerant: bool = False
    stalled_ranks: List[int] = field(default_factory=list)

    def copy(self) -> "ProtocolTrace":
        """Shallow-per-sequence copy, safe to mutate (used by fixtures)."""
        return ProtocolTrace(
            name=self.name,
            num_ranks=self.num_ranks,
            events=[list(seq) for seq in self.events],
            segments=dict(self.segments),
            overwrite_tolerant=self.overwrite_tolerant,
            stalled_ranks=list(self.stalled_ranks),
        )

    def total_events(self) -> int:
        return sum(len(seq) for seq in self.events)


# Finding classes (the ``check`` field of :class:`Finding`).
UNMATCHED = "unmatched-notification"
DEADLOCK = "deadlock"
DOUBLE_POST = "double-post"
DATA_RACE = "data-race"
BUDGET = "budget"
MODEL_STUCK = "model-stuck"


@dataclass(frozen=True)
class Finding:
    """One invariant violation, attributed to a trace location."""

    check: str
    message: str
    trace: str = ""
    rank: int = -1
    segment: int = -1
    notif_id: int = -1

    def describe(self) -> str:
        where = []
        if self.trace:
            where.append(self.trace)
        if self.rank >= 0:
            where.append(f"rank {self.rank}")
        if self.segment >= 0:
            where.append(f"segment {self.segment}")
        if self.notif_id >= 0:
            where.append(f"notification {self.notif_id}")
        location = ", ".join(where)
        return f"[{self.check}] {location}: {self.message}"
