"""Record real executions as protocol traces (`TracingRuntime`).

:class:`TracingRuntime` wraps any concrete
:class:`~repro.gaspi.runtime.GaspiRuntime` (threaded, shm, fault-injected
stacks — the same wrapper idiom as :mod:`repro.faults.injection`) and
records every post, consume and barrier into a shared
:class:`TraceSink`.  The sink assembles the same
:class:`~repro.analysis.events.ProtocolTrace` the static model produces,
so a *real* 8-rank run can be replayed through the identical checkers —
validating the model against reality in one direction, and catching
protocol bugs that only a live interleaving exposes in the other.

Two deliberate differences from model traces:

* Local stores through :meth:`segment_view` are invisible (the wrapper
  hands out the inner runtime's views), so race checking on recorded
  traces covers remote writes only.
* :meth:`notify_drain` is *not* forwarded to the inner runtime's
  optimised sweep: the base-class loop runs instead, so every reset is
  individually observed.  That costs a few waitsome calls per drain —
  part of the documented tracing overhead.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..gaspi.constants import (
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    GASPI_BLOCK,
)
from ..gaspi.group import Group
from ..gaspi.runtime import GaspiRuntime
from .events import (
    BARRIER,
    CONSUME,
    POST,
    Event,
    ProtocolTrace,
    SegmentMeta,
)


class TraceSink:
    """Thread-safe collector for one traced multi-rank execution.

    Each rank appends only to its own sequence (rank threads never share
    a :class:`TracingRuntime`), so event appends are lock-free; the
    segment-metadata map is the only shared structure.
    """

    def __init__(self, num_ranks: int) -> None:
        self.num_ranks = num_ranks
        self.events: List[List[Event]] = [[] for _ in range(num_ranks)]
        self.segments: Dict[Tuple[int, int], SegmentMeta] = {}
        self._lock = threading.Lock()

    def record(self, event: Event) -> None:
        self.events[event.rank].append(event)

    def add_segment(self, meta: SegmentMeta) -> None:
        with self._lock:
            self.segments[(meta.rank, meta.segment_id)] = meta

    def trace(
        self, name: str = "traced-run", overwrite_tolerant: bool = False
    ) -> ProtocolTrace:
        """Snapshot the recorded execution as a checkable trace."""
        return ProtocolTrace(
            name=name,
            num_ranks=self.num_ranks,
            events=[list(sequence) for sequence in self.events],
            segments=dict(self.segments),
            overwrite_tolerant=overwrite_tolerant,
        )


class TracingRuntime(GaspiRuntime):
    """Forwarding wrapper that records protocol events into a sink."""

    def __init__(self, inner: GaspiRuntime, sink: TraceSink) -> None:
        self.inner = inner
        self.sink = sink

    # -- identity ------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def fault_injected(self) -> bool:
        return self.inner.fault_injected

    # -- segments ------------------------------------------------------- #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        self.inner.segment_create(segment_id, size, num_notifications)
        self.sink.add_segment(
            SegmentMeta(
                rank=self.inner.rank,
                segment_id=segment_id,
                size=max(int(size), 1),
                num_notifications=num_notifications,
            )
        )

    def segment_delete(self, segment_id: int) -> None:
        self.inner.segment_delete(segment_id)

    def segment_view(
        self,
        segment_id: int,
        dtype: Any = np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        return self.inner.segment_view(segment_id, dtype, offset, count)

    def segment_size(self, segment_id: int) -> int:
        return self.inner.segment_size(segment_id)

    def segment_read(
        self,
        segment_id: int,
        dtype: Any = np.float64,
        offset: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        return self.inner.segment_read(segment_id, dtype, offset, count)

    def segment_bind(self, segment_id: int, array: np.ndarray) -> None:
        self.inner.segment_bind(segment_id, array)

    @property
    def supports_bind(self) -> bool:
        # Defining segment_bind above would otherwise make the base-class
        # probe report bind support the inner runtime may not have.
        return self.inner.supports_bind

    # -- one-sided ------------------------------------------------------ #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        self.inner.write(
            segment_id_local, offset_local, target_rank, segment_id_remote,
            offset_remote, size, queue,
        )
        self.sink.record(
            Event(
                kind=POST,
                rank=self.inner.rank,
                segment=segment_id_remote,
                dst=target_rank,
                offset=offset_remote,
                length=size,
                local_offset=offset_local,
                note="write",
            )
        )

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self.inner.notify(
            target_rank, segment_id_remote, notification_id, notification_value, queue
        )
        self.sink.record(
            Event(
                kind=POST,
                rank=self.inner.rank,
                segment=segment_id_remote,
                dst=target_rank,
                notif_id=notification_id,
                value=notification_value,
            )
        )

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        self.inner.write_notify(
            segment_id_local, offset_local, target_rank, segment_id_remote,
            offset_remote, size, notification_id, notification_value, queue,
        )
        self.sink.record(
            Event(
                kind=POST,
                rank=self.inner.rank,
                segment=segment_id_remote,
                dst=target_rank,
                offset=offset_remote,
                length=size,
                notif_id=notification_id,
                value=notification_value,
                local_offset=offset_local,
            )
        )

    # -- weak synchronisation ------------------------------------------- #
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Optional[int]:
        return self.inner.notify_waitsome(
            segment_id_local, notification_begin, notification_count, timeout
        )

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        value = self.inner.notify_reset(segment_id_local, notification_id)
        if value > 0:
            self.sink.record(
                Event(
                    kind=CONSUME,
                    rank=self.inner.rank,
                    segment=segment_id_local,
                    dst=self.inner.rank,
                    notif_id=notification_id,
                    value=value,
                )
            )
        return value

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        return self.inner.notify_peek(segment_id_local, notification_id)

    def notify_probe(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count: Optional[int] = None,
    ) -> bool:
        return self.inner.notify_probe(
            segment_id_local, notification_begin, notification_count
        )

    # notify_drain is intentionally NOT forwarded: the inherited loop runs
    # through self.notify_waitsome/self.notify_reset so every consume is
    # recorded (see module docstring).

    # -- queues / synchronisation --------------------------------------- #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        self.inner.wait(queue, timeout)

    def barrier(
        self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK
    ) -> None:
        self.inner.barrier(group, timeout)
        self.sink.record(Event(kind=BARRIER, rank=self.inner.rank))

    def atomic_fetch_add(
        self, segment_id: int, offset: int, target_rank: int, value: int
    ) -> int:
        return self.inner.atomic_fetch_add(segment_id, offset, target_rank, value)
