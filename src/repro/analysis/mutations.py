"""Seeded schedule corruptions — the analyzer's own regression fixtures.

Each function takes a *clean* :class:`~repro.analysis.events.ProtocolTrace`
and returns a copy with one deliberate protocol defect planted in it.
The test suite asserts that :func:`repro.analysis.analyze` flags each
corrupted trace with exactly the finding class the defect belongs to —
a checker that stays silent on its own defect class, or that misfiles a
defect under a different class, fails the suite.

The defects mirror real bug patterns in hand-built one-sided schedules:
a forgotten ``notify`` (drop), a consume hoisted above the post that
funds it (deadlock), a copy-paste error in a chunk-id map (duplicate
id), a handshake shortened by "obviously unnecessary" acks (lost
notification), a missing entry fence (data race), and an off-by-range
slice of the notification board or workspace (budget).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from .events import CONSUME, POST, Event, ProtocolTrace


def _first_post_location(
    trace: ProtocolTrace, rank: Optional[int], data_only: bool
) -> tuple:
    ranks = range(trace.num_ranks) if rank is None else (rank,)
    for r in ranks:
        for i, event in enumerate(trace.events[r]):
            if event.kind != POST or event.notif_id < 0:
                continue
            if data_only and event.length <= 0:
                continue
            return r, i
    raise ValueError("trace contains no matching post event to mutate")


def drop_notify(trace: ProtocolTrace, rank: Optional[int] = None) -> ProtocolTrace:
    """Delete one rank's posts to its first notification slot.

    A forgotten ``notify`` is a source-level bug, so it is missing in
    *every* call of the schedule — all of the rank's posts to the slot go,
    not just the first, otherwise a later call's post would turn the
    starvation into an ordinary wait-for edge.  Expected finding class:
    ``unmatched-notification`` — the consumer waits on a slot nobody will
    ever fund.
    """
    mutated = trace.copy()
    r, i = _first_post_location(mutated, rank, data_only=False)
    anchor = mutated.events[r][i]
    slot = (anchor.dst, anchor.segment, anchor.notif_id)
    mutated.events[r] = [
        event
        for event in mutated.events[r]
        if not (
            event.kind == POST
            and (event.dst, event.segment, event.notif_id) == slot
        )
    ]
    mutated.name += " +drop_notify"
    return mutated


def hoist_first_consume(trace: ProtocolTrace) -> ProtocolTrace:
    """Move every rank's first consume to the front of its sequence.

    Models a schedule that waits before it sends.  On a ring (each rank
    funds its successor), this creates a circular wait: expected finding
    class ``deadlock``.
    """
    mutated = trace.copy()
    for r in range(mutated.num_ranks):
        sequence = mutated.events[r]
        for i, event in enumerate(sequence):
            if event.kind == CONSUME:
                sequence.insert(0, sequence.pop(i))
                break
    mutated.name += " +hoist_first_consume"
    return mutated


def duplicate_chunk_id(trace: ProtocolTrace) -> ProtocolTrace:
    """Reassign a chunk's notification id onto its neighbour's slot.

    The classic copy-paste error in a hand-built id map: two transfers of
    one sender to one destination end up posting the *same* id, and the
    intended id is never posted.  Expected finding classes:
    ``double-post`` (the shared slot is overwritten unconsumed) plus
    ``unmatched-notification`` (the orphaned slot's consumer starves).
    """
    mutated = trace.copy()
    for r in range(mutated.num_ranks):
        sequence = mutated.events[r]
        first: Optional[int] = None
        for i, event in enumerate(sequence):
            if event.kind != POST or event.length <= 0 or event.notif_id < 0:
                continue
            if first is None:
                first = i
                continue
            anchor = sequence[first]
            if event.dst == anchor.dst and event.notif_id != anchor.notif_id:
                sequence[first] = anchor.with_notif_id(event.notif_id)
                mutated.name += " +duplicate_chunk_id"
                return mutated
    raise ValueError("trace has no same-destination chunk posts to collide")


def drop_consumes(
    trace: ProtocolTrace, rank: int, notif_ids: Iterable[int]
) -> ProtocolTrace:
    """Delete ``rank``'s consumes of the given notification ids.

    The generic "shrunk handshake" mutation.  Dropping a plan's
    previous-call ack consumes yields ``double-post`` (the acked slot —
    and the data slot it guards — can be overwritten unconsumed);
    dropping a pipelined ring's entry-fence consume additionally yields
    ``data-race`` (the predecessor's writes are no longer ordered after
    the local payload initialisation).
    """
    wanted = set(notif_ids)
    mutated = trace.copy()
    mutated.events[rank] = [
        event
        for event in mutated.events[rank]
        if not (event.kind == CONSUME and event.notif_id in wanted)
    ]
    mutated.name += " +drop_consumes"
    return mutated


def corrupt_notification_id(trace: ProtocolTrace) -> ProtocolTrace:
    """Shift one notification slot wholly outside the board budget.

    Both sides of the handshake compute the same wrong id (as a mis-built
    ``NotificationLayout`` range would), so the schedule still matches up
    — only the budget check can see the defect.  Expected finding class:
    ``budget``.
    """
    mutated = trace.copy()
    r, i = _first_post_location(mutated, None, data_only=False)
    anchor = mutated.events[r][i]
    slot = (anchor.dst, anchor.segment, anchor.notif_id)
    meta = mutated.segments.get((anchor.dst, anchor.segment))
    bogus = (meta.num_notifications if meta else 1 << 20) + 7
    for rank in range(mutated.num_ranks):
        sequence = mutated.events[rank]
        for j, event in enumerate(sequence):
            if event.kind == POST and (
                event.dst, event.segment, event.notif_id
            ) == slot:
                sequence[j] = event.with_notif_id(bogus)
            elif event.kind == CONSUME and (
                event.rank, event.segment, event.notif_id
            ) == slot:
                sequence[j] = event.with_notif_id(bogus)
    mutated.name += " +corrupt_notification_id"
    return mutated


def corrupt_offset(trace: ProtocolTrace) -> ProtocolTrace:
    """Slide one transfer's staging slice past the end of its workspace.

    The source offset of a ``write_notify`` overruns the local segment —
    a mis-sized staging pool.  The destination, the notification and the
    matching are untouched, so every other checker stays clean.  Expected
    finding class: ``budget`` (source overflow).
    """
    mutated = trace.copy()
    r, i = _first_post_location(mutated, None, data_only=True)
    anchor = mutated.events[r][i]
    meta = mutated.segments.get((anchor.rank, anchor.segment))
    size = meta.size if meta else 0
    mutated.events[r][i] = replace(anchor, local_offset=max(size - 1, 0))
    mutated.name += " +corrupt_offset"
    return mutated
