"""Message traces produced by the schedule executor.

A trace is optional (it costs memory for large schedules) but invaluable
for debugging cost-model behaviour and for the ablation benchmarks: it
records, per message, when the sender injected it, when it arrived and how
long the receiver spent processing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.schedule import Message


@dataclass(frozen=True)
class MessageTrace:
    """Timing of one simulated message."""

    round_index: int
    src: int
    dst: int
    nbytes: int
    inject_time: float
    arrival_time: float
    complete_time: float
    rendezvous: bool
    intra_node: bool
    tag: str = ""

    @property
    def transfer_time(self) -> float:
        """Wire time of the message (arrival minus injection)."""
        return self.arrival_time - self.inject_time

    @property
    def receiver_time(self) -> float:
        """Receiver-side processing time (matching, copies, reduction)."""
        return self.complete_time - self.arrival_time


class TraceRecorder:
    """Collects :class:`MessageTrace` records during a simulation."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[MessageTrace] = []

    def record(
        self,
        round_index: int,
        message: Message,
        inject_time: float,
        arrival_time: float,
        complete_time: float,
        rendezvous: bool,
        intra_node: bool,
    ) -> None:
        if not self.enabled:
            return
        self.records.append(
            MessageTrace(
                round_index=round_index,
                src=message.src,
                dst=message.dst,
                nbytes=message.nbytes,
                inject_time=inject_time,
                arrival_time=arrival_time,
                complete_time=complete_time,
                rendezvous=rendezvous,
                intra_node=intra_node,
                tag=message.tag,
            )
        )

    # -- summaries -------------------------------------------------------- #
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def bytes_by_rank(self) -> Dict[int, int]:
        """Bytes injected per sender rank."""
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.src] = out.get(r.src, 0) + r.nbytes
        return out

    def rendezvous_fraction(self) -> float:
        """Fraction of messages that needed a rendezvous handshake."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.rendezvous) / len(self.records)

    def intra_node_fraction(self) -> float:
        """Fraction of messages that stayed inside a node."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.intra_node) / len(self.records)

    def slowest_messages(self, count: int = 10) -> List[MessageTrace]:
        """The ``count`` messages with the longest end-to-end time."""
        return sorted(
            self.records, key=lambda r: r.complete_time - r.inject_time, reverse=True
        )[:count]

    def __len__(self) -> int:
        return len(self.records)
