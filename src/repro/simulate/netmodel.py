"""Point-to-point cost model (LogGP flavoured, with protocol effects).

The model charges, for a message of ``m`` bytes:

* **sender occupancy** ``o_s + m / injection_bandwidth`` — the time the
  sending rank's CPU/NIC pair is busy before it can inject the next
  message (this is what serialises the P-1 writes of the direct AlltoAll);
* **wire time** ``L + m / bandwidth`` — latency plus serialisation on the
  link (intra-node messages use the shared-memory latency/bandwidth);
* **receiver cost** — for one-sided GASPI traffic only the notification
  processing ``o_notify``; for two-sided MPI traffic the matching overhead
  ``o_match`` plus an internal-copy cost ``m * copy_per_byte`` (eager
  buffering / pack-unpack), and above the eager threshold a rendezvous
  handshake that both couples sender and receiver and adds an extra
  round-trip latency;
* **reduction cost** ``reduce_bytes * reduce_seconds_per_byte`` when the
  receiver combines the payload into an accumulator.

These few parameters are enough to reproduce the qualitative behaviour the
paper reports: tree algorithms win for small payloads (latency-dominated),
the pipelined ring wins for large payloads (bandwidth-dominated, no
rendezvous stalls, no phase barriers), and the direct write_notify
AlltoAll overtakes two-sided AlltoAll once messages are big enough that
per-message MPI overheads stop amortising.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..utils.validation import check_positive


@dataclass(frozen=True)
class TransferCost:
    """Cost breakdown of one point-to-point transfer."""

    sender_occupancy: float
    wire_time: float
    receiver_cost: float
    rendezvous: bool

    @property
    def total_latency(self) -> float:
        """Time from injection start to data usable at the receiver."""
        return self.sender_occupancy + self.wire_time + self.receiver_cost


@dataclass(frozen=True)
class NetworkParameters:
    """Parameters of the cluster interconnect and of the messaging layers.

    All times are seconds, bandwidths bytes/second.
    """

    # -- inter-node link ------------------------------------------------- #
    latency: float = 1.5e-6
    bandwidth: float = 6.75e9  # 54 Gbit/s FDR InfiniBand

    # -- intra-node (shared memory) channel ------------------------------- #
    shm_latency: float = 0.4e-6
    shm_bandwidth: float = 20.0e9

    # -- per-message CPU overheads ---------------------------------------- #
    send_overhead: float = 0.6e-6
    recv_overhead: float = 0.6e-6

    # -- one-sided (GASPI) specifics --------------------------------------- #
    notification_overhead: float = 0.3e-6
    #: fixed per-collective cost of preparing segments/notification ranges in
    #: the GASPI prototype (dominates very small payloads, cf. Figure 8).
    onesided_setup_overhead: float = 40.0e-6
    #: fraction of the wire serialisation charged to the *sender* of an RDMA
    #: write: the NIC streams the data while the CPU only posts a descriptor,
    #: so back-to-back one-sided writes overlap partially (1.0 = fully
    #: serialised like a CPU-driven send, 0.0 = free injection).
    onesided_injection_factor: float = 0.5

    # -- two-sided (MPI) specifics ----------------------------------------- #
    matching_overhead: float = 0.9e-6
    twosided_copy_per_byte: float = 0.18e-9  # eager buffering / pack-unpack / CPU-driven pipelining
    eager_threshold: int = 16 * 1024
    rendezvous_latency: float = 2.5e-6
    twosided_setup_overhead: float = 3.0e-6

    # -- computation -------------------------------------------------------- #
    reduce_seconds_per_byte: float = 0.15e-9  # ~6.7 GB/s streaming reduction
    copy_seconds_per_byte: float = 0.08e-9

    # -- global synchronisation -------------------------------------------- #
    barrier_per_round: float = 2.0e-6

    def __post_init__(self) -> None:
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.shm_bandwidth, "shm_bandwidth")
        if self.latency < 0 or self.shm_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be non-negative")

    # ------------------------------------------------------------------ #
    # cost helpers
    # ------------------------------------------------------------------ #
    def wire_time(self, nbytes: int, intra_node: bool) -> float:
        """Latency plus serialisation of ``nbytes`` on the chosen channel."""
        if intra_node:
            return self.shm_latency + nbytes / self.shm_bandwidth
        return self.latency + nbytes / self.bandwidth

    def sender_occupancy(self, nbytes: int, intra_node: bool) -> float:
        """How long the sender is busy injecting one message."""
        bw = self.shm_bandwidth if intra_node else self.bandwidth
        return self.send_overhead + nbytes / bw

    def onesided_cost(self, nbytes: int, intra_node: bool) -> TransferCost:
        """Cost of a GASPI ``write_notify`` of ``nbytes``.

        The sender is only partially occupied by the payload (RDMA offload,
        see :attr:`onesided_injection_factor`); the receiver pays just the
        notification processing.
        """
        bw = self.shm_bandwidth if intra_node else self.bandwidth
        occupancy = self.send_overhead + self.onesided_injection_factor * nbytes / bw
        return TransferCost(
            sender_occupancy=occupancy,
            wire_time=self.wire_time(nbytes, intra_node),
            receiver_cost=self.notification_overhead,
            rendezvous=False,
        )

    def twosided_cost(self, nbytes: int, intra_node: bool) -> TransferCost:
        """Cost of an MPI send/recv pair of ``nbytes``."""
        rendezvous = nbytes > self.eager_threshold
        receiver = (
            self.recv_overhead
            + self.matching_overhead
            + nbytes * self.twosided_copy_per_byte
        )
        wire = self.wire_time(nbytes, intra_node)
        if rendezvous:
            wire += self.rendezvous_latency
        return TransferCost(
            sender_occupancy=self.sender_occupancy(nbytes, intra_node),
            wire_time=wire,
            receiver_cost=receiver,
            rendezvous=rendezvous,
        )

    def reduction_time(self, nbytes: int) -> float:
        """Time to combine ``nbytes`` of payload into a local accumulator."""
        return nbytes * self.reduce_seconds_per_byte

    def copy_time(self, nbytes: int) -> float:
        """Time of a local memory copy of ``nbytes``."""
        return nbytes * self.copy_seconds_per_byte

    def barrier_time(self, num_ranks: int) -> float:
        """Cost of a full synchronisation over ``num_ranks`` processes."""
        if num_ranks <= 1:
            return 0.0
        rounds = (num_ranks - 1).bit_length()
        return rounds * (self.latency + self.barrier_per_round)

    # ------------------------------------------------------------------ #
    # variants
    # ------------------------------------------------------------------ #
    def scaled(self, **overrides) -> "NetworkParameters":
        """Return a copy with some fields overridden (calibration helper)."""
        return replace(self, **overrides)


def fdr_infiniband() -> NetworkParameters:
    """54 Gbit/s FDR InfiniBand (Fraunhofer SkyLake partition)."""
    return NetworkParameters(latency=1.5e-6, bandwidth=54e9 / 8)


def omnipath_100g(latency: float = 1.2e-6) -> NetworkParameters:
    """100 Gbit/s Intel OmniPath (MareNostrum4, Galileo)."""
    return NetworkParameters(latency=latency, bandwidth=100e9 / 8)
