"""Network/timing simulator used to regenerate the paper's figures.

The paper measures collectives on three clusters (SkyLake + FDR
InfiniBand, MareNostrum4 + OmniPath, Galileo + OmniPath).  Those machines
are not available to this reproduction, so the figure benchmarks replay
each algorithm's :class:`~repro.core.schedule.CommunicationSchedule` on a
parametric cost model instead:

* :class:`~repro.simulate.netmodel.NetworkParameters` — LogGP-flavoured
  α/β model with per-message CPU overheads, per-NIC injection
  serialisation, an intra-node shared-memory channel, eager/rendezvous
  behaviour for two-sided (MPI) traffic and cheap notifications for
  one-sided (GASPI) traffic.
* :class:`~repro.simulate.machine.MachineModel` — cluster presets
  (`skylake_fdr`, `marenostrum4`, `galileo`) with node counts and
  ranks-per-node mapping.
* :class:`~repro.simulate.executor.ScheduleExecutor` — replays a schedule
  round by round and reports per-rank completion times.

Absolute times are model outputs, not measurements; the reproduction
targets the *shape* of the paper's figures (who wins, where the
crossovers are), as recorded in ``EXPERIMENTS.md``.
"""

from .netmodel import NetworkParameters, TransferCost
from .machine import MachineModel, galileo, marenostrum4, skylake_fdr, get_machine, MACHINES
from .executor import ScheduleExecutor, SimulationResult, simulate_schedule
from .trace import MessageTrace, TraceRecorder

__all__ = [
    "NetworkParameters",
    "TransferCost",
    "MachineModel",
    "skylake_fdr",
    "marenostrum4",
    "galileo",
    "get_machine",
    "MACHINES",
    "ScheduleExecutor",
    "SimulationResult",
    "simulate_schedule",
    "MessageTrace",
    "TraceRecorder",
]
