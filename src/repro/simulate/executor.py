"""Schedule executor: replay a communication schedule on a machine model.

The executor advances one virtual clock per rank through the schedule's
rounds:

* a rank may only start its round-``k`` activity once it has finished its
  activity of rounds ``< k`` (partial results feed the next round);
* within a round a rank injects its messages back-to-back (per-NIC
  serialisation) and processes incoming messages in arrival order;
* one-sided messages decouple sender and receiver (the receiver only pays
  the notification cost when the data arrives); two-sided messages above
  the eager threshold couple them through the rendezvous handshake;
* a round flagged ``barrier_after`` synchronises every rank, which is how
  the MPI baselines' phase barriers are modelled (the GASPI collectives do
  not use them — that is one of the paper's points).

The result is the per-rank completion time; the collective's simulated
duration is the maximum over ranks, optionally including the per-family
setup overhead (segment preparation for GASPI, communicator-internal setup
for MPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.schedule import CommunicationSchedule, Message, Protocol, Round
from ..utils.validation import require
from .machine import MachineModel
from .trace import TraceRecorder


@dataclass
class SimulationResult:
    """Outcome of simulating one schedule on one machine."""

    schedule_name: str
    machine_name: str
    num_ranks: int
    rank_times: List[float]
    setup_time: float
    barrier_time: float
    trace: Optional[TraceRecorder] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Completion time of the collective (slowest rank, plus setup)."""
        slowest = max(self.rank_times) if self.rank_times else 0.0
        return slowest + self.setup_time

    @property
    def imbalance(self) -> float:
        """Difference between the slowest and fastest rank."""
        if not self.rank_times:
            return 0.0
        return max(self.rank_times) - min(self.rank_times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult({self.schedule_name!r} on {self.machine_name!r}: "
            f"{self.total_time * 1e6:.1f} us)"
        )


class ScheduleExecutor:
    """Replays :class:`CommunicationSchedule` objects on a machine model."""

    def __init__(self, machine: MachineModel, collect_trace: bool = False) -> None:
        self.machine = machine
        self.collect_trace = collect_trace

    # ------------------------------------------------------------------ #
    def run(
        self,
        schedule: CommunicationSchedule,
        include_setup: bool = True,
        rank_offsets: Optional[List[float]] = None,
    ) -> SimulationResult:
        """Simulate ``schedule`` and return per-rank completion times.

        ``rank_offsets`` gives each rank's arrival time at the collective
        (seconds; default all-zero) — the simulator-side form of a process
        arrival pattern, so straggler and skew scenarios replay on machine
        models exactly as they run on the threaded substrate.
        """
        schedule.validate()
        num_ranks = schedule.num_ranks
        require(
            schedule.max_rank_used() < num_ranks,
            "schedule references ranks beyond its declared world size",
        )
        net = self.machine.network
        trace = TraceRecorder(enabled=self.collect_trace)

        if rank_offsets is None:
            ready = [0.0] * num_ranks
        else:
            require(
                len(rank_offsets) == num_ranks,
                f"rank_offsets must have one entry per rank "
                f"({num_ranks}), got {len(rank_offsets)}",
            )
            require(
                all(t >= 0.0 for t in rank_offsets),
                "rank_offsets must be non-negative",
            )
            ready = [float(t) for t in rank_offsets]
        total_barrier = 0.0

        for round_index, rnd in enumerate(schedule.rounds):
            ready = self._run_round(round_index, rnd, ready, trace)
            if rnd.barrier_after:
                sync = max(ready) + net.barrier_time(num_ranks)
                total_barrier += net.barrier_time(num_ranks)
                ready = [sync] * num_ranks

        setup = self._setup_time(schedule) if include_setup else 0.0
        metadata = dict(schedule.metadata)
        if rank_offsets is not None:
            metadata["max_arrival_skew"] = max(rank_offsets, default=0.0)
        return SimulationResult(
            schedule_name=schedule.name,
            machine_name=self.machine.name,
            num_ranks=num_ranks,
            rank_times=ready,
            setup_time=setup,
            barrier_time=total_barrier,
            trace=trace if self.collect_trace else None,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _setup_time(self, schedule: CommunicationSchedule) -> float:
        """Per-collective setup cost, chosen by the dominant protocol."""
        net = self.machine.network
        protocols = {m.protocol for m in schedule.messages()}
        if not protocols:
            return 0.0
        if protocols == {Protocol.TWOSIDED}:
            return net.twosided_setup_overhead
        return net.onesided_setup_overhead

    def _run_round(
        self,
        round_index: int,
        rnd: Round,
        ready: List[float],
        trace: TraceRecorder,
    ) -> List[float]:
        net = self.machine.network
        sender_clock: Dict[int, float] = {}
        receiver_clock: Dict[int, float] = {}

        arrivals: List[tuple] = []  # (arrival_time, message, inject_time, cost)

        # -- injection phase: per-sender serialisation ---------------------- #
        for message in rnd.messages:
            src = message.src
            intra = self.machine.same_node(message.src, message.dst)
            if message.protocol is Protocol.TWOSIDED:
                cost = net.twosided_cost(message.nbytes, intra)
            else:
                cost = net.onesided_cost(message.nbytes, intra)

            inject = sender_clock.get(src, ready[src])
            if cost.rendezvous:
                # The transfer cannot start before the receiver has entered the
                # round and posted its receive (sender/receiver coupling).
                inject = max(inject, ready[message.dst])
            sender_clock[src] = inject + cost.sender_occupancy
            arrival = inject + cost.sender_occupancy + cost.wire_time
            arrivals.append((arrival, message, inject, cost, intra))

        # -- delivery phase: per-receiver processing in arrival order ------- #
        arrivals.sort(key=lambda item: item[0])
        for arrival, message, inject, cost, intra in arrivals:
            dst = message.dst
            start = max(arrival, receiver_clock.get(dst, ready[dst]))
            complete = start + cost.receiver_cost + net.reduction_time(message.reduce_bytes)
            receiver_clock[dst] = complete
            trace.record(
                round_index,
                message,
                inject_time=inject,
                arrival_time=arrival,
                complete_time=complete,
                rendezvous=cost.rendezvous,
                intra_node=intra,
            )

        # -- purely local compute -------------------------------------------- #
        local_clock: Dict[int, float] = {}
        for comp in rnd.local_compute:
            base = max(
                ready[comp.rank],
                sender_clock.get(comp.rank, 0.0),
                receiver_clock.get(comp.rank, 0.0),
                local_clock.get(comp.rank, 0.0),
            )
            local_clock[comp.rank] = base + net.reduction_time(comp.compute_bytes)

        # -- merge clocks ------------------------------------------------------ #
        new_ready = list(ready)
        for rank in rnd.participants():
            new_ready[rank] = max(
                ready[rank],
                sender_clock.get(rank, 0.0),
                receiver_clock.get(rank, 0.0),
                local_clock.get(rank, 0.0),
            )
        return new_ready


def simulate_schedule(
    schedule: CommunicationSchedule,
    machine: MachineModel,
    collect_trace: bool = False,
    include_setup: bool = True,
    rank_offsets: Optional[List[float]] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`ScheduleExecutor`."""
    return ScheduleExecutor(machine, collect_trace=collect_trace).run(
        schedule, include_setup=include_setup, rank_offsets=rank_offsets
    )
