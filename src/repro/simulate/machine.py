"""Machine models: the clusters of the paper's evaluation (Section V).

A :class:`MachineModel` combines a network parameter set with the node
layout (how many ranks share a node) so the executor can decide whether a
message crosses the network or stays inside a node, exactly as the paper's
experiments distinguish one-process-per-node runs (Figures 8–12) from the
hybrid 4-processes-per-node AlltoAll runs (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..utils.validation import require
from .netmodel import NetworkParameters, fdr_infiniband, omnipath_100g


@dataclass(frozen=True)
class MachineModel:
    """A cluster: name, node layout and network parameters."""

    name: str
    num_nodes: int
    ranks_per_node: int
    network: NetworkParameters
    description: str = ""

    def __post_init__(self) -> None:
        require(self.num_nodes >= 1, "num_nodes must be >= 1")
        require(self.ranks_per_node >= 1, "ranks_per_node must be >= 1")

    @property
    def total_ranks(self) -> int:
        """Number of ranks the machine can host."""
        return self.num_nodes * self.ranks_per_node

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank`` (block mapping, as with one rank per core set)."""
        require(rank >= 0, "rank must be non-negative")
        return rank // self.ranks_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when two ranks share a node (→ shared-memory channel)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def with_ranks(self, num_ranks: int, ranks_per_node: int | None = None) -> "MachineModel":
        """Resize the machine so it hosts exactly ``num_ranks`` ranks.

        Used by parameter sweeps over node counts: the network parameters
        stay identical, only the layout changes.
        """
        rpn = self.ranks_per_node if ranks_per_node is None else ranks_per_node
        require(rpn >= 1, "ranks_per_node must be >= 1")
        nodes = -(-num_ranks // rpn)
        return replace(self, num_nodes=nodes, ranks_per_node=rpn)

    def with_network(self, **overrides) -> "MachineModel":
        """Copy of the machine with some network parameters overridden."""
        return replace(self, network=self.network.scaled(**overrides))


def skylake_fdr(num_nodes: int = 32, ranks_per_node: int = 1) -> MachineModel:
    """Fraunhofer ITWM SkyLake partition: dual Xeon Gold 6132, FDR InfiniBand.

    The paper runs Figures 8–12 here with one GASPI/MPI process per node.
    """
    return MachineModel(
        name="skylake_fdr",
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        network=fdr_infiniband(),
        description="SkyLake + 54 Gbit/s FDR InfiniBand (Fraunhofer ITWM)",
    )


def marenostrum4(num_nodes: int = 32, ranks_per_node: int = 1) -> MachineModel:
    """MareNostrum4 (BSC): Xeon Platinum 8160, 100 Gbit/s Intel OmniPath.

    Used for the allreduce_SSP / Matrix Factorization experiments
    (Figures 6 and 7) on 32 nodes.
    """
    return MachineModel(
        name="marenostrum4",
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        network=omnipath_100g(latency=1.1e-6),
        description="MareNostrum4 + 100 Gbit/s OmniPath (BSC)",
    )


def galileo(num_nodes: int = 16, ranks_per_node: int = 4) -> MachineModel:
    """Galileo (CINECA): Broadwell nodes, 100 Gbit/s OmniPath, 4 ppn runs.

    Used for the AlltoAll evaluation (Figure 13) with four GASPI/MPI
    processes per node.
    """
    return MachineModel(
        name="galileo",
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        network=omnipath_100g(latency=1.3e-6),
        description="Galileo + 100 Gbit/s OmniPath (CINECA)",
    )


#: Machine presets by name (used by the benchmark harness CLI/metadata).
MACHINES: Dict[str, MachineModel] = {
    "skylake_fdr": skylake_fdr(),
    "marenostrum4": marenostrum4(),
    "galileo": galileo(),
}


def get_machine(name: str) -> MachineModel:
    """Look up a machine preset by name."""
    try:
        return MACHINES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from exc
