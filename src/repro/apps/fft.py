"""Distributed FFT mini-app (the Quantum Espresso motivation, Section IV-B).

The paper motivates its AlltoAll work with the custom FFT inside Quantum
Espresso, where ``MPI_Alltoall`` consumes 20–40 % of the FFT runtime and
per-pair messages are 6–24 KB.  This mini-app reproduces that pattern with
a 2-D slab-decomposed complex FFT:

1. each rank owns a contiguous slab of rows of an ``N × N`` complex grid;
2. it FFTs its rows locally (``numpy.fft.fft`` along the contiguous axis);
3. a block AlltoAll transposes the grid so each rank owns a slab of
   columns;
4. it FFTs the (now local) columns;
5. an inverse transpose restores the original layout.

The result is verified against ``numpy.fft.fft2`` of the full grid, so the
mini-app doubles as an integration test of ``gaspi_alltoall`` on complex
data, and its per-pair message size can be dialled into the paper's
6–24 KB window with :func:`paper_message_range`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.api import Communicator
from ..gaspi.runtime import GaspiRuntime
from ..gaspi.spmd import run_spmd
from ..utils.validation import require


@dataclass
class FFTStats:
    """Measurements of one distributed FFT execution on one rank."""

    rank: int
    grid_size: int
    num_ranks: int
    alltoall_calls: int
    alltoall_block_bytes: int
    max_error: float

    @property
    def message_size_in_paper_range(self) -> bool:
        """True when the per-pair message size falls in the paper's 6–24 KB."""
        return 6 * 1024 <= self.alltoall_block_bytes <= 24 * 1024


def paper_message_range(num_ranks: int) -> List[int]:
    """Grid sizes whose transpose messages land in the paper's 6–24 KB window.

    The per-pair block of the transpose of an ``N × N`` complex128 grid over
    ``P`` ranks is ``16 · N² / P²`` bytes; this helper returns the ``N`` that
    map to roughly 6 KB, 12 KB and 24 KB for the given ``P``.
    """
    require(num_ranks >= 1, "num_ranks must be >= 1")
    sizes = []
    for target in (6 * 1024, 12 * 1024, 24 * 1024):
        n = int(round(np.sqrt(target * num_ranks * num_ranks / 16)))
        n = max(num_ranks, (n // num_ranks) * num_ranks)  # divisible by P
        sizes.append(n)
    return sizes


class DistributedFFT:
    """Slab-decomposed 2-D FFT over the ranks of a communicator."""

    def __init__(self, comm: Communicator, grid_size: int) -> None:
        require(grid_size >= comm.size, "grid must have at least one row per rank")
        require(
            grid_size % comm.size == 0,
            f"grid size {grid_size} must be divisible by the number of ranks {comm.size}",
        )
        self.comm = comm
        self.grid_size = int(grid_size)
        self.rows_per_rank = self.grid_size // comm.size
        self.alltoall_calls = 0

    # ------------------------------------------------------------------ #
    @property
    def block_bytes(self) -> int:
        """Per-pair payload of one transpose AlltoAll (complex128)."""
        return 16 * self.rows_per_rank * self.rows_per_rank

    def local_slab(self, full_grid: np.ndarray) -> np.ndarray:
        """This rank's row slab of the full grid."""
        r = self.comm.rank
        return np.ascontiguousarray(
            full_grid[r * self.rows_per_rank : (r + 1) * self.rows_per_rank, :]
        )

    # ------------------------------------------------------------------ #
    # the transpose built on AlltoAll
    # ------------------------------------------------------------------ #
    def transpose(self, slab: np.ndarray) -> np.ndarray:
        """Globally transpose a row slab into a column slab (AlltoAll).

        ``slab`` has shape ``(rows_per_rank, N)``; the result has shape
        ``(rows_per_rank, N)`` as well but holds the rank's slab of the
        *transposed* grid.
        """
        P = self.comm.size
        rpr = self.rows_per_rank
        require(slab.shape == (rpr, self.grid_size), "slab has the wrong shape")
        # Pack: block destined to rank j is my rows × j's columns, transposed
        # so it lands contiguously as rows of the transposed grid.
        send = np.empty(P * rpr * rpr * 2, dtype=np.float64)
        for j in range(P):
            block = slab[:, j * rpr : (j + 1) * rpr].T  # (rpr, rpr)
            view = send[j * rpr * rpr * 2 : (j + 1) * rpr * rpr * 2]
            view.view(np.complex128)[:] = np.ascontiguousarray(block).ravel()
        recv = self.comm.alltoall(send)
        self.alltoall_calls += 1
        # Unpack: block from rank i holds my transposed rows × i's columns.
        out = np.empty((rpr, self.grid_size), dtype=np.complex128)
        for i in range(P):
            block = recv[i * rpr * rpr * 2 : (i + 1) * rpr * rpr * 2].view(np.complex128)
            out[:, i * rpr : (i + 1) * rpr] = block.reshape(rpr, rpr)
        return out

    # ------------------------------------------------------------------ #
    # the 2-D FFT
    # ------------------------------------------------------------------ #
    def fft2(self, slab: np.ndarray) -> np.ndarray:
        """2-D forward FFT of the distributed grid; returns the local slab.

        The returned slab is the rank's row slab of ``fft2(grid)``.
        """
        rows_done = np.fft.fft(slab, axis=1)  # FFT along the contiguous rows
        transposed = self.transpose(rows_done)  # now rows are original columns
        cols_done = np.fft.fft(transposed, axis=1)  # FFT along original columns
        return self.transpose(cols_done)  # back to the row layout


def run_distributed_fft(
    num_ranks: int,
    grid_size: int,
    seed: int = 0,
    timeout: float = 120.0,
) -> List[FFTStats]:
    """Run the mini-app on ``num_ranks`` rank threads and verify the result.

    Every rank builds the same (seeded) global grid, transforms its slab
    through the distributed pipeline and compares it with the corresponding
    slab of ``numpy.fft.fft2`` of the whole grid.
    """

    def worker(runtime: GaspiRuntime) -> FFTStats:
        comm = Communicator(runtime)
        rng = np.random.default_rng(seed)
        grid = rng.standard_normal((grid_size, grid_size)) + 1j * rng.standard_normal(
            (grid_size, grid_size)
        )
        fft = DistributedFFT(comm, grid_size)
        local = fft.local_slab(grid)
        result = fft.fft2(local)
        reference = np.fft.fft2(grid)[
            comm.rank * fft.rows_per_rank : (comm.rank + 1) * fft.rows_per_rank, :
        ]
        max_error = float(np.max(np.abs(result - reference)) / (np.max(np.abs(reference)) + 1e-30))
        return FFTStats(
            rank=comm.rank,
            grid_size=grid_size,
            num_ranks=comm.size,
            alltoall_calls=fft.alltoall_calls,
            alltoall_block_bytes=fft.block_bytes,
            max_error=max_error,
        )

    return run_spmd(num_ranks, worker, timeout=timeout)
