"""HPC application workloads motivating the consistent collectives.

Currently a single mini-app: the distributed FFT of
:mod:`repro.apps.fft`, which reproduces the communication pattern of the
Quantum Espresso FFT kernel the paper profiles (AlltoAll-dominated
transpose with 6–24 KB per-pair messages).
"""

from .fft import (
    DistributedFFT,
    FFTStats,
    paper_message_range,
    run_distributed_fft,
)

__all__ = ["DistributedFFT", "FFTStats", "paper_message_range", "run_distributed_fft"]
